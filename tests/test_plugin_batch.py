"""Batch lookup tier tests: batching, routing, per-shard degradation.

Covers the ISSUE-7 plugin-tier contracts: a batched lookup returns
decisions field-identical to the same items looked up one by one (and
interoperates with the single path's decision cache); a batch is one
fault-injection point on the wire; whole-batch degradation still audits
per item; a degraded *shard* under FAIL_CLOSED blocks only traffic
whose hashes route there; and — the satellite-1 regression — server and
client ``stats()`` stay field-identical to their registry scopes after
the hot-path mutexes were dropped.
"""

from __future__ import annotations

import pytest

from repro.errors import LookupRejected, LookupTimeout, ShardDegraded
from repro.fingerprint.config import FingerprintConfig
from repro.plugin import (
    BatchLookupClient,
    FailureMode,
    LookupClient,
    LookupServer,
    PolicyLookup,
    ShardRouter,
)
from repro.plugin.server import DEGRADED_GRANULARITY
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.util.faults import Fault, FaultInjector

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)
SRC = "https://src.example.com"
DST = "https://dst.example.com"

SECRET = (
    "the acquisition shortlist names three companies and remains strictly "
    "confidential until the board votes next week"
)
BENIGN = (
    "community gardening volunteers meet on saturdays to plan the tulip "
    "beds and the composting rota for spring"
)

ITEMS = [
    ("q0", [("q0#p0", "the acquisition shortlist names three companies and stays confidential")]),
    ("q1", [("q1#p0", "an entirely unrelated note about mountain weather and hiking boots")]),
    ("q2", [("q2#p0", "community gardening volunteers meet on saturdays to plan the tulip beds")]),
]


def make_model(**kwargs) -> TextDisclosureModel:
    policies = PolicyStore()
    policies.register_service(
        SRC, privilege=Label.of("secret"), confidentiality=Label.of("secret")
    )
    policies.register_service(DST)
    model = TextDisclosureModel(policies, CONFIG, **kwargs)
    model.observe(SRC, "d0", [("d0#p0", SECRET)])
    model.observe(SRC, "d1", [("d1#p0", BENIGN)])
    return model


def make_server(*, faults=None, **model_kwargs) -> LookupServer:
    return LookupServer(PolicyLookup(make_model(**model_kwargs)), faults=faults)


class TestBatchEquivalence:
    def test_batch_decisions_identical_to_singles(self):
        single_client = LookupClient(make_server())
        batch_client = BatchLookupClient(make_server())
        singles = [
            single_client.lookup(DST, doc_id, paragraphs)
            for doc_id, paragraphs in ITEMS
        ]
        batched = batch_client.lookup_batch(DST, ITEMS)
        assert len(batched) == len(ITEMS)
        for got, want in zip(batched, singles):
            assert got.decision == want.decision
            assert not got.degraded
        # The scenario distinguishes outcomes: q0 and q2 disclose text
        # observed at the confidential source (everything seen there
        # carries its label), q1 matches nothing.
        assert not batched[0].decision.allowed
        assert batched[1].decision.allowed
        assert not batched[2].decision.allowed

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_sharded_batch_matches_plain_singles(self, n_shards):
        with ShardRouter(max_workers=4) as router:
            sharded_client = BatchLookupClient(
                make_server(n_shards=n_shards, router=router)
            )
            plain_client = LookupClient(make_server())
            batched = sharded_client.lookup_batch(DST, ITEMS)
            for outcome, (doc_id, paragraphs) in zip(batched, ITEMS):
                assert outcome.decision == plain_client.lookup(
                    DST, doc_id, paragraphs
                ).decision

    def test_batch_shares_the_single_path_decision_cache(self):
        lookup = PolicyLookup(make_model())
        for doc_id, paragraphs in ITEMS:
            lookup.lookup(DST, doc_id, paragraphs)
        misses_before = lookup.cache.misses
        hits_before = lookup.cache.hits
        decisions = lookup.lookup_batch(DST, ITEMS)
        assert lookup.cache.hits == hits_before + len(ITEMS)
        assert lookup.cache.misses == misses_before
        for decision, (doc_id, paragraphs) in zip(decisions, ITEMS):
            assert decision == lookup.lookup(DST, doc_id, paragraphs)


class TestBatchFaultBoundary:
    def test_one_fault_decision_covers_the_whole_batch(self):
        server = make_server(faults=FaultInjector(schedule=[Fault.drop()]))
        client = BatchLookupClient(server, max_retries=1, backoff=0.0)
        outcomes = client.lookup_batch(DST, ITEMS)
        # One wire drop, one retry, then all items served together.
        assert all(not o.degraded for o in outcomes)
        assert all(o.attempts == 2 and o.faults == ("timeout",) for o in outcomes)
        stats = server.stats()
        assert stats["server_requests"] == 2  # round trips, not items
        assert stats["server_batches"] == 2
        assert stats["server_batch_items"] == 2 * len(ITEMS)
        assert stats["server_dropped"] == 1
        assert stats["server_served"] == len(ITEMS)
        cstats = client.stats()
        assert cstats["requests"] == len(ITEMS)
        assert cstats["batches"] == 1
        assert cstats["attempts"] == 2
        assert cstats["timeouts"] == 1

    def test_injected_latency_is_paid_once_per_batch(self):
        server = make_server(faults=FaultInjector(schedule=[Fault.slow(0.05)]))
        client = BatchLookupClient(server, timeout=0.2)
        outcomes = client.lookup_batch(DST, ITEMS)
        assert [o.latency for o in outcomes] == [0.05] * len(ITEMS)
        assert server.stats()["server_timed_out"] == 0

    def test_whole_batch_degradation_audits_per_item(self):
        server = make_server(
            faults=FaultInjector(schedule=[Fault.drop(), Fault.error(503)])
        )
        client = BatchLookupClient(
            server, max_retries=1, backoff=0.0, failure_mode=FailureMode.FAIL_CLOSED
        )
        outcomes = client.lookup_batch(DST, ITEMS)
        assert all(o.degraded and not o.decision.allowed for o in outcomes)
        assert all(o.faults == ("timeout", "http-503") for o in outcomes)
        for outcome in outcomes:
            violation = outcome.decision.violations[0]
            assert violation.granularity == DEGRADED_GRANULARITY
        events = [
            e
            for e in server.lookup.model.audit.degradations()
            if e.kind == "lookup_unavailable"
        ]
        assert len(events) == len(ITEMS)
        assert sorted(e.doc_id for e in events) == ["q0", "q1", "q2"]
        assert client.stats()["degraded"] == len(ITEMS)
        assert client.stats()["fail_closed_blocked"] == len(ITEMS)

    def test_fail_open_batch_allows_each_item(self):
        server = make_server(faults=FaultInjector(schedule=[Fault.drop()]))
        client = BatchLookupClient(
            server, max_retries=0, failure_mode=FailureMode.FAIL_OPEN
        )
        outcomes = client.lookup_batch(DST, ITEMS)
        assert all(o.degraded and o.decision.allowed for o in outcomes)
        assert client.stats()["fail_open_allowed"] == len(ITEMS)


def _routing_texts(model, shard: int):
    """One text whose hashes route to *shard*, one that avoids it."""
    engine = model.tracker.paragraphs
    db = engine.hash_db
    hit = miss = None
    for i in range(2000):
        text = f"probe {i:04d} xy"
        hashes = engine.fingerprint(text).hashes
        if not hashes:
            continue
        shards = {index for index, _group in db.partition(hashes)}
        if hit is None and shard in shards:
            hit = text
        if miss is None and shard not in shards:
            miss = text
        if hit and miss:
            return hit, miss
    raise AssertionError("no routing texts found")  # pragma: no cover


class TestPerShardDegradation:
    def test_degraded_shard_blocks_only_traffic_routed_there(self):
        server = make_server(n_shards=4)
        model = server.lookup.model
        hit_text, miss_text = _routing_texts(model, 2)
        # Installed *after* setup and probing, so only the queries below
        # can consume the schedule; one drop per expected routed sweep.
        model.tracker.paragraphs.hash_db.set_faults(
            FaultInjector.for_shards(4, {2: [Fault.drop()]})
        )
        client = LookupClient(
            server, max_retries=0, failure_mode=FailureMode.FAIL_CLOSED
        )
        ok = client.lookup(DST, "m0", [("m0#p0", miss_text)])
        assert not ok.degraded
        blocked = client.lookup(DST, "h0", [("h0#p0", hit_text)])
        assert blocked.degraded and not blocked.decision.allowed
        assert blocked.decision.violations[0].granularity == DEGRADED_GRANULARITY
        # Schedule consumed: the same routed query now succeeds, and
        # traffic avoiding the shard was never at risk.
        again = client.lookup(DST, "h1", [("h1#p0", hit_text)])
        assert not again.degraded
        stats = server.stats()
        assert stats["server_shard_degraded"] == 1
        assert stats["server_dropped"] == 1

    def test_shard_error_is_translated_to_backend_rejection(self):
        server = make_server(n_shards=4)
        model = server.lookup.model
        hit_text, _miss = _routing_texts(model, 1)
        model.tracker.paragraphs.hash_db.set_faults(
            FaultInjector.for_shards(4, {1: [Fault.error(502)]})
        )
        with pytest.raises(LookupRejected) as exc_info:
            server.handle(DST, "h0", [("h0#p0", hit_text)], timeout=0.2)
        assert exc_info.value.status == 502
        assert isinstance(exc_info.value.__cause__, ShardDegraded)
        assert server.stats()["server_shard_degraded"] == 1
        assert server.stats()["server_rejected"] == 1

    def test_degraded_shard_fails_a_whole_batch_containing_routed_items(self):
        server = make_server(n_shards=4)
        model = server.lookup.model
        hit_text, miss_text = _routing_texts(model, 3)
        model.tracker.paragraphs.hash_db.set_faults(
            FaultInjector.for_shards(4, {3: [Fault.drop()]})
        )
        client = BatchLookupClient(
            server, max_retries=0, failure_mode=FailureMode.FAIL_CLOSED
        )
        # The batch is one wire request: an item routed to the degraded
        # shard takes the whole round trip (and so every item) with it.
        outcomes = client.lookup_batch(
            DST, [("m0", [("m0#p0", miss_text)]), ("h0", [("h0#p0", hit_text)])]
        )
        assert all(o.degraded for o in outcomes)


class TestStatsFieldIdentity:
    """Satellite 1: counters stay registry-backed after the mutex drop."""

    def test_server_stats_field_identical_to_registry(self):
        server = make_server(faults=FaultInjector(schedule=[Fault.drop()]))
        batch_client = BatchLookupClient(server, max_retries=1, backoff=0.0)
        batch_client.lookup_batch(DST, ITEMS)
        server.observe(SRC, "d2", [("d2#p0", "fresh text observed after setup")])
        stats = server.stats()
        snap = server.registry.snapshot()
        for name in (
            "requests",
            "served",
            "observes",
            "dropped",
            "rejected",
            "timed_out",
            "batches",
            "batch_items",
            "shard_degraded",
        ):
            assert stats[f"server_{name}"] == snap[f"server.{name}"], name
        assert snap["server.batch_size"]["count"] == 2
        assert snap["server.batch_size"]["sum"] == 2.0 * len(ITEMS)

    def test_client_stats_field_identical_to_scope(self):
        server = make_server(faults=FaultInjector(schedule=[Fault.error(500)]))
        for client in (
            LookupClient(server, max_retries=0, failure_mode=FailureMode.FAIL_OPEN),
            BatchLookupClient(
                server, max_retries=0, failure_mode=FailureMode.FAIL_OPEN
            ),
        ):
            client.lookup(DST, "q0", ITEMS[0][1])
            stats = client.stats()
            assert stats == client.metrics.snapshot()
        # The batch client's extra counter is part of the identity too.
        batch = BatchLookupClient(server)
        batch.lookup_batch(DST, ITEMS)
        assert batch.stats()["batches"] == 1
        assert batch.stats() == batch.metrics.snapshot()

    def test_single_path_counters_unchanged_by_refactor(self):
        server = make_server(
            faults=FaultInjector(schedule=[Fault.drop(), Fault.error(503)])
        )
        client = LookupClient(
            server, max_retries=3, backoff=0.0, failure_mode=FailureMode.FAIL_OPEN
        )
        outcome = client.lookup(DST, "q0", ITEMS[0][1])
        assert not outcome.degraded
        assert outcome.attempts == 3
        assert client.stats() == {
            "requests": 1,
            "attempts": 3,
            "retries": 2,
            "timeouts": 1,
            "server_errors": 1,
            "degraded": 0,
            "fail_open_allowed": 0,
            "fail_closed_blocked": 0,
        }


class TestShardRouter:
    def test_map_preserves_order_and_counts(self):
        with ShardRouter(max_workers=3) as router:
            assert router.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]
            assert router.map(lambda x: x + 1, [7]) == [8]  # inline path
            assert router.map(lambda x: x, []) == []
            stats = router.stats()
            assert stats["scatters"] == 1  # only the multi-item call
            assert stats["jobs"] == 4
            assert stats == router.metrics.snapshot()

    def test_map_runs_every_job_then_raises_first_failure(self):
        ran = []

        def job(i):
            ran.append(i)
            if i == 1:
                raise ShardDegraded(1, "drop")
            return i

        with ShardRouter(max_workers=2) as router:
            with pytest.raises(ShardDegraded):
                router.map(job, [0, 1, 2, 3])
        assert sorted(ran) == [0, 1, 2, 3]  # no job outlived the call

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            ShardRouter(max_workers=0)

    def test_sweep_through_router_raises_shard_degraded(self):
        from repro.disclosure import ShardedHashDatabase

        with ShardRouter(max_workers=4) as router:
            db = ShardedHashDatabase(4, router=router)
            by_shard = {i: [] for i in range(4)}
            h = 0
            while min(len(g) for g in by_shard.values()) < 2:
                by_shard[db.shard_of(h)].append(h)
                h += 1
            for i, group in by_shard.items():
                for value in group:
                    db.record(value, f"seg-{i}", 1.0)
            db.set_faults(FaultInjector.for_shards(4, {0: [Fault.drop()]}))
            with pytest.raises(ShardDegraded):
                db.sweep(frozenset(by_shard[0] + by_shard[1] + by_shard[2]))
            assert db.sweep(frozenset(by_shard[0] + by_shard[3]))
