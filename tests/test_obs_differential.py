"""Registry-vs-legacy differential tests (the equivalence contract).

The observability refactor replaced every component's private counters
with instruments in a :class:`~repro.obs.registry.MetricsRegistry`; the
legacy ``stats()`` dicts became thin views over those instruments.
These tests pin the contract: after exercising each component, every
field of its legacy ``stats()`` dict must be identical to the value the
registry snapshot reports for the corresponding instrument. A drift in
either direction — a code path updating one side only — fails here.
"""

import pytest

from repro.browser.http import HttpRequest
from repro.dlp import NetworkDlpFirewall
from repro.errors import NetworkError
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.lookup import PolicyLookup
from repro.plugin.server import FailureMode, LookupClient, LookupServer
from repro.services import FaultyNetwork, Network, WikiService
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.util.faults import Fault, FaultInjector
from repro.util.rwlock import RWLock

from conftest import OTHER_TEXT, SECRET_TEXT

SRC = "https://src.example.com"
DST = "https://dst.example.com"

#: The engine's legacy stats() fields (see DisclosureEngine.stats()).
ENGINE_FIELDS = (
    "segments",
    "distinct_hashes",
    "version",
    "queries",
    "query_cache_hits",
    "candidates_swept",
    "auth_cache_hits",
    "auth_cache_misses",
    "ownership_changes",
)


def scalars(snapshot):
    """Counters/gauges only — histograms are additions, not legacy fields."""
    return {k: v for k, v in snapshot.items() if not isinstance(v, dict)}


def make_model() -> TextDisclosureModel:
    policies = PolicyStore()
    policies.register_service(
        SRC, privilege=Label.of("s"), confidentiality=Label.of("s")
    )
    policies.register_service(DST)
    model = TextDisclosureModel(policies, TINY_CONFIG)
    model.observe(SRC, "doc-src", [("doc-src#p0", SECRET_TEXT)])
    return model


class TestEngineDifferential:
    def test_stats_field_identical_to_scope_snapshot(self):
        model = make_model()
        engine = model.tracker.paragraphs
        baseline = engine.stats()  # observation replay runs queries too
        # Exercise queries (one repeat per target id hits the cache),
        # then compare every legacy field against the registry.
        for text in (SECRET_TEXT, OTHER_TEXT):
            fp = engine.fingerprint(text)
            engine.disclosing_sources(fingerprint=fp)
        engine.disclosing_sources("doc-src#p0")
        engine.disclosing_sources("doc-src#p0")

        stats = engine.stats()
        snapshot = scalars(engine.metrics.snapshot())
        assert set(stats) == set(ENGINE_FIELDS)
        assert stats == snapshot
        assert stats["queries"] == baseline["queries"] + 4
        assert stats["query_cache_hits"] == baseline["query_cache_hits"] + 1

    def test_both_granularities_disjoint_in_shared_registry(self):
        model = make_model()
        snapshot = model.registry.snapshot()
        for field in ENGINE_FIELDS:
            assert f"engine.paragraph.{field}" in snapshot
            assert f"engine.document.{field}" in snapshot


class TestRWLockDifferential:
    def test_stats_field_identical_to_scope_snapshot(self):
        lock = RWLock()
        with lock.read_locked():
            with lock.read_locked():
                pass
        with lock.write_locked():
            pass
        stats = lock.stats()
        assert stats == lock.metrics.snapshot()
        assert stats["read_acquisitions"] == 2
        assert stats["write_acquisitions"] == 1


class TestDecisionCacheDifferential:
    def test_attributes_identical_to_scope_snapshot(self):
        from repro.plugin.cache import DecisionCache

        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("missing")
        cache.put("c", 3)  # evicts
        snapshot = cache.metrics.snapshot()
        assert snapshot == {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "size": len(cache),
        }
        assert snapshot["evictions"] == 1


class TestPolicyLookupDifferential:
    def test_aggregated_stats_reconstructable_from_registry(self):
        model = make_model()
        lookup = PolicyLookup(model)
        doc = f"{DST}|d"
        lookup.lookup(DST, doc, [(f"{doc}#p0", SECRET_TEXT)])
        lookup.lookup(DST, doc, [(f"{doc}#p0", SECRET_TEXT)])  # cache hit
        lookup.lookup(DST, doc, [(f"{doc}#p1", OTHER_TEXT)])

        stats = lookup.stats()
        snap = model.registry.snapshot()
        for name in ("hits", "misses", "evictions"):
            assert stats[f"decision_cache_{name}"] == snap[f"decision_cache.{name}"]
        hits, misses = snap["decision_cache.hits"], snap["decision_cache.misses"]
        assert stats["decision_cache_hit_rate"] == pytest.approx(
            hits / (hits + misses)
        )
        for field in ENGINE_FIELDS:
            assert (
                stats[f"engine_{field}"]
                == snap[f"engine.paragraph.{field}"] + snap[f"engine.document.{field}"]
            ), field
        for name in (
            "read_acquisitions",
            "write_acquisitions",
            "read_contended",
            "write_contended",
        ):
            assert stats[f"lock_{name}"] == snap[f"lock.{name}"]


class TestServerClientDifferential:
    def test_server_stats_field_identical_to_registry(self):
        model = make_model()
        faults = FaultInjector(schedule=[Fault.drop(), Fault.error(503)])
        server = LookupServer(PolicyLookup(model), faults=faults)
        client = LookupClient(
            server, max_retries=3, backoff=0.0, failure_mode=FailureMode.FAIL_OPEN
        )
        doc = f"{DST}|d"
        client.lookup(DST, doc, [(f"{doc}#p0", SECRET_TEXT)])

        server_stats = server.stats()
        snap = server.registry.snapshot()
        for name in (
            "requests",
            "served",
            "observes",
            "dropped",
            "rejected",
            "timed_out",
        ):
            assert server_stats[f"server_{name}"] == snap[f"server.{name}"], name
        # The injector's fields merge into the combined dict and stay
        # field-identical to its own ``faults.`` scope.
        for name, value in faults.stats().items():
            assert server_stats[name] == value
            assert faults.metrics.snapshot()[name] == value

    def test_client_stats_field_identical_to_private_scope(self):
        model = make_model()
        server = LookupServer(
            PolicyLookup(model), faults=FaultInjector(schedule=[Fault.drop()])
        )
        client = LookupClient(
            server, max_retries=2, backoff=0.0, failure_mode=FailureMode.FAIL_CLOSED
        )
        doc = f"{DST}|d"
        client.lookup(DST, doc, [(f"{doc}#p0", SECRET_TEXT)])
        stats = client.stats()
        assert stats == client.metrics.snapshot()
        assert stats["retries"] == 1

    def test_two_clients_do_not_share_counters(self):
        model = make_model()
        server = LookupServer(PolicyLookup(model))
        one = LookupClient(server)
        two = LookupClient(server)
        doc = f"{DST}|d"
        one.lookup(DST, doc, [(f"{doc}#p0", OTHER_TEXT)])
        assert one.stats()["requests"] == 1
        assert two.stats()["requests"] == 0


class TestFaultsAndNetworkDifferential:
    def test_injector_stats_field_identical_to_scope(self):
        injector = FaultInjector(
            schedule=[Fault.drop(), Fault.error(500), Fault.slow(0.1)]
        )
        for _ in range(4):  # fourth request is healthy, counted as none
            injector.next_fault()
        stats = injector.stats()
        assert stats == injector.metrics.snapshot()
        assert stats["injected_drop"] == 1
        assert stats["injected_error"] == 1
        assert stats["injected_latency"] == 1

    def test_faulty_network_stats_field_identical_to_scope(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        faulty = FaultyNetwork(
            network,
            FaultInjector(schedule=[Fault.drop()]),
            sleep=lambda _s: None,
        )
        request = HttpRequest(
            "POST", wiki.url("/wiki/save"), form_data={"page": "P", "body": "x"}
        )
        with pytest.raises(NetworkError):
            faulty.deliver(request)
        faulty.deliver(request)

        stats = faulty.stats()
        delivery_snapshot = faulty.metrics.snapshot()
        for name, value in delivery_snapshot.items():
            assert stats[name] == value, name
        assert stats["dropped"] == 1
        assert stats["delivered"] == 1
        # The injector's fields ride along in the combined dict.
        assert stats["injected_drop"] == 1


class TestFirewallDifferential:
    def test_stats_field_identical_to_registry(self):
        firewall = NetworkDlpFirewall(TINY_CONFIG, threshold=0.5)
        firewall.register_sensitive("doc-1", SECRET_TEXT)
        firewall(
            HttpRequest(
                "POST", "https://evil.example/post", form_data={"body": SECRET_TEXT}
            )
        )
        firewall(
            HttpRequest(
                "POST", "https://ok.example/post", form_data={"body": OTHER_TEXT}
            )
        )
        stats = firewall.stats()
        snapshot = scalars(firewall.metrics.snapshot())
        assert stats == snapshot
        assert stats["requests_seen"] == 2
        assert stats["detections"] >= 1
        # The internal engine shares the firewall's registry.
        full = firewall.registry.snapshot()
        assert full["engine.paragraph.queries"] > 0
