"""Tests for service policies and the policy store."""

import pytest

from repro.errors import PolicyError, UnknownServiceError
from repro.tdm.labels import EMPTY_LABEL, Label
from repro.tdm.policy import PolicyStore, ServicePolicy
from repro.tdm.tags import Tag


class TestServicePolicy:
    def test_defaults_untrusted(self):
        policy = ServicePolicy("https://x.com")
        assert policy.privilege == EMPTY_LABEL
        assert policy.confidentiality == EMPTY_LABEL

    def test_empty_service_id_rejected(self):
        with pytest.raises(PolicyError):
            ServicePolicy("")

    def test_is_trusted_for(self):
        policy = ServicePolicy("s", privilege=Label.of("ti", "tw"))
        assert policy.is_trusted_for(Label.of("ti"))
        assert policy.is_trusted_for(EMPTY_LABEL)
        assert not policy.is_trusted_for(Label.of("tx"))

    def test_with_privilege_tag(self):
        policy = ServicePolicy("s").with_privilege_tag("tn")
        assert Tag("tn") in policy.privilege

    def test_without_privilege_tag(self):
        policy = ServicePolicy("s", privilege=Label.of("tn", "ti"))
        assert policy.without_privilege_tag("tn").privilege == Label.of("ti")

    def test_name_falls_back_to_id(self):
        assert ServicePolicy("https://x.com").name == "https://x.com"
        assert ServicePolicy("https://x.com", display_name="X").name == "X"


class TestPolicyStore:
    def test_register_and_get(self):
        store = PolicyStore()
        policy = store.register_service("s1", privilege=Label.of("a"))
        assert store.get("s1") is policy
        assert store.is_registered("s1")

    def test_unknown_service_defaults_untrusted(self):
        store = PolicyStore()
        policy = store.get("https://unknown.example")
        assert policy.privilege == EMPTY_LABEL
        assert policy.confidentiality == EMPTY_LABEL

    def test_strict_mode_raises_for_unknown(self):
        store = PolicyStore(default_untrusted=False)
        with pytest.raises(UnknownServiceError):
            store.get("https://unknown.example")

    def test_reregister_replaces(self):
        store = PolicyStore()
        store.register_service("s1")
        store.register_service("s1", privilege=Label.of("x"))
        assert Tag("x") in store.get("s1").privilege
        assert len(store) == 1

    def test_services_sorted(self):
        store = PolicyStore()
        store.register_service("b")
        store.register_service("a")
        assert store.services() == ["a", "b"]

    def test_registration_records_tags(self):
        store = PolicyStore()
        store.register_service("s", privilege=Label.of("ti"))
        assert store.tag("ti") == Tag("ti")


class TestTagAllocation:
    def test_allocate(self):
        store = PolicyStore()
        tag = store.allocate_tag("tn", owner="alice")
        assert tag.owner == "alice"
        assert store.tag("tn") is tag

    def test_duplicate_allocation_rejected(self):
        store = PolicyStore()
        store.allocate_tag("tn")
        with pytest.raises(PolicyError):
            store.allocate_tag("tn")

    def test_unknown_tag_lookup_raises(self):
        with pytest.raises(PolicyError):
            PolicyStore().tag("ghost")

    def test_known_tags_sorted(self):
        store = PolicyStore()
        store.allocate_tag("zz")
        store.allocate_tag("aa")
        assert [t.name for t in store.known_tags()] == ["aa", "zz"]


class TestPrivilegeManagement:
    def test_grant_and_revoke(self):
        store = PolicyStore()
        store.register_service("s")
        store.allocate_tag("tn", owner="alice")
        store.grant_privilege("s", "tn", user="alice")
        assert Tag("tn") in store.get("s").privilege
        store.revoke_privilege("s", "tn", user="alice")
        assert Tag("tn") not in store.get("s").privilege

    def test_owner_enforced(self):
        # §3.1: the allocator controls which services may process data
        # protected with their custom tag.
        store = PolicyStore()
        store.register_service("s")
        store.allocate_tag("tn", owner="alice")
        with pytest.raises(PolicyError):
            store.grant_privilege("s", "tn", user="mallory")

    def test_admin_bypasses_ownership(self):
        store = PolicyStore()
        store.register_service("s")
        store.allocate_tag("tn", owner="alice")
        store.grant_privilege("s", "tn")  # user=None == administrator
        assert Tag("tn") in store.get("s").privilege

    def test_admin_tags_usable_by_anyone(self):
        store = PolicyStore()
        store.register_service("s")
        store.allocate_tag("shared")  # no owner
        store.grant_privilege("s", "shared", user="anyone")
        assert Tag("shared") in store.get("s").privilege
