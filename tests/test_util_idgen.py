"""Tests for repro.util.idgen."""

import itertools

import pytest

from repro.util.idgen import IdGenerator


class TestIdGenerator:
    def test_prefix_and_padding(self):
        gen = IdGenerator("doc")
        assert gen.next() == "doc-0001"
        assert gen.next() == "doc-0002"

    def test_custom_width(self):
        gen = IdGenerator("p", width=2)
        assert gen.next() == "p-01"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator("")

    def test_uniqueness(self):
        gen = IdGenerator("x")
        ids = [gen.next() for _ in range(200)]
        assert len(set(ids)) == 200

    def test_lexicographic_matches_numeric_order(self):
        gen = IdGenerator("seg")
        ids = [gen.next() for _ in range(50)]
        assert ids == sorted(ids)

    def test_iterable_protocol(self):
        gen = IdGenerator("it")
        first_three = list(itertools.islice(gen, 3))
        assert first_three == ["it-0001", "it-0002", "it-0003"]

    def test_prefix_property(self):
        assert IdGenerator("abc").prefix == "abc"
