"""Tests for incremental fingerprinting, including batch equivalence."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import FingerprintConfig, TINY_CONFIG
from repro.fingerprint.incremental import IncrementalFingerprinter

from conftest import SECRET_TEXT

BATCH = Fingerprinter(TINY_CONFIG)

chunks = st.lists(
    st.text(alphabet=string.ascii_letters + string.digits + " .,!",
            min_size=0, max_size=25),
    min_size=0,
    max_size=12,
)


class TestIncremental:
    def test_single_append_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        assert inc.current().hashes == BATCH.fingerprint(SECRET_TEXT).hashes

    def test_char_by_char_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        for ch in SECRET_TEXT:
            inc.append(ch)
        batch = BATCH.fingerprint(SECRET_TEXT)
        current = inc.current()
        assert current.hashes == batch.hashes
        assert current.selections == batch.selections

    def test_empty_state(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        assert inc.current().is_empty()
        assert inc.text_length == 0

    def test_text_length_counts_original_chars(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("Hello, World!")
        assert inc.text_length == len("Hello, World!")

    def test_append_returns_new_selection_count(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        total = 0
        for ch in SECRET_TEXT:
            total += inc.append(ch)
        # The deque-path selections match the final fingerprint size
        # (short-text partial selections are reported separately).
        assert total >= len(inc.current()) - 1

    def test_prefix_consistency(self):
        """Every intermediate state equals the batch fingerprint of the
        prefix typed so far — the per-keystroke use case."""
        inc = IncrementalFingerprinter(TINY_CONFIG)
        prefix = ""
        for ch in SECRET_TEXT[:80]:
            prefix += ch
            inc.append(ch)
            assert inc.current().hashes == BATCH.fingerprint(prefix).hashes

    @given(chunks)
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence_arbitrary_chunks(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        batch = Fingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        expected = batch.fingerprint(text)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections

    @given(chunks)
    @settings(max_examples=30, deadline=None)
    def test_property_spans_map_into_original(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        for selection in inc.current().selections:
            assert 0 <= selection.orig_start < selection.orig_end <= len(text)
