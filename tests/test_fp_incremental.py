"""Tests for incremental fingerprinting, including batch equivalence."""

import string
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import FingerprintConfig, TINY_CONFIG
from repro.fingerprint.incremental import IncrementalFingerprinter
from repro.fingerprint.normalize import normalize

from conftest import SECRET_TEXT

BATCH = Fingerprinter(TINY_CONFIG)

chunks = st.lists(
    st.text(alphabet=string.ascii_letters + string.digits + " .,!",
            min_size=0, max_size=25),
    min_size=0,
    max_size=12,
)

#: Full-Unicode chunk alphabet: the lone lower-expanding code point
#: (U+0130 İ), capital sharp s, ligatures, accented letters, CJK.
UNICODE_ALPHABET = (
    string.ascii_letters + string.digits + " .,!" + "İıẞßﬁﬂÄäÖöÑñÇçÉé北京"
)
unicode_chunks = st.lists(
    st.text(alphabet=UNICODE_ALPHABET, min_size=0, max_size=25),
    min_size=0,
    max_size=12,
)


class TestIncremental:
    def test_single_append_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        assert inc.current().hashes == BATCH.fingerprint(SECRET_TEXT).hashes

    def test_char_by_char_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        for ch in SECRET_TEXT:
            inc.append(ch)
        batch = BATCH.fingerprint(SECRET_TEXT)
        current = inc.current()
        assert current.hashes == batch.hashes
        assert current.selections == batch.selections

    def test_empty_state(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        assert inc.current().is_empty()
        assert inc.text_length == 0

    def test_text_length_counts_original_chars(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("Hello, World!")
        assert inc.text_length == len("Hello, World!")

    def test_append_returns_new_selection_count(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        total = 0
        for ch in SECRET_TEXT:
            total += inc.append(ch)
        # The deque-path selections match the final fingerprint size
        # (short-text partial selections are reported separately).
        assert total >= len(inc.current()) - 1

    def test_prefix_consistency(self):
        """Every intermediate state equals the batch fingerprint of the
        prefix typed so far — the per-keystroke use case."""
        inc = IncrementalFingerprinter(TINY_CONFIG)
        prefix = ""
        for ch in SECRET_TEXT[:80]:
            prefix += ch
            inc.append(ch)
            assert inc.current().hashes == BATCH.fingerprint(prefix).hashes

    @given(chunks)
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence_arbitrary_chunks(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        batch = Fingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        expected = batch.fingerprint(text)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections

    @given(unicode_chunks)
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence_unicode_chunks(self, pieces):
        """Batch == incremental on full-Unicode input, including the
        lower-expanding İ (the fingerprint-pipeline crash regression)."""
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        batch = Fingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        expected = batch.fingerprint(text)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections

    @given(chunks)
    @settings(max_examples=30, deadline=None)
    def test_property_spans_map_into_original(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        for selection in inc.current().selections:
            assert 0 <= selection.orig_start < selection.orig_end <= len(text)


class TestUnicodeRegression:
    """The lowercase-expansion crash: 'İ'.lower() is two code points."""

    def test_dotted_capital_i_append_does_not_crash(self):
        # Before the fix, the incremental normaliser appended both
        # expansion products but one offset entry, so current() died
        # mapping selections back to original offsets.
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("İ" * 10)
        assert inc.current().hashes == BATCH.fingerprint("İ" * 10).hashes

    def test_char_by_char_unicode_equals_batch(self):
        text = "İstanbul ve İzmir: STRAẞE ﬁle ﬂow, naïve 北京 2024!"
        inc = IncrementalFingerprinter(TINY_CONFIG)
        prefix = ""
        for ch in text:
            prefix += ch
            inc.append(ch)
            assert inc.current().hashes == BATCH.fingerprint(prefix).hashes
        assert inc.current().selections == BATCH.fingerprint(text).selections

    def test_combining_dot_product_is_dropped(self):
        # Normalised stream must match the batch normaliser exactly:
        # one 'i' per İ, never the combining dot.
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("İİ")
        assert inc._norm_chars == ["i", "i"]
        assert inc._offsets == [0, 1]


class TestAppendCountBoundary:
    """append()'s return value must reconcile with current()."""

    def test_partial_window_reports_first_selection(self):
        # Bug: with fewer hashes than window_size, append() returned 0
        # while current() already reported one selected hash.
        inc = IncrementalFingerprinter(TINY_CONFIG)  # ngram 6, window 3
        reported = inc.append("abcdef")  # exactly one n-gram hash
        assert len(inc.current()) == 1
        assert reported == 1

    def test_count_equals_window_size_boundary(self):
        # 8 chars under TINY_CONFIG yield exactly window_size hashes:
        # the deque phase's first selection is the same rightmost
        # minimum the partial scans already reported — counted once.
        inc = IncrementalFingerprinter(TINY_CONFIG)
        total = 0
        for ch in "abcdefgh":
            total += inc.append(ch)
        assert len(inc._values) == TINY_CONFIG.window_size
        assert total == len(inc._reported)  # at-most-once per position
        assert total >= len(inc.current().selections)

    @given(chunks)
    @settings(max_examples=60, deadline=None)
    def test_counts_cover_current_selection_at_every_prefix(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        total = 0
        for piece in pieces:
            total += inc.append(piece)
            # Everything current() reports has been counted by some
            # append() — including during the partial window.
            assert total >= len(inc.current().selections)
        assert total == len(inc._reported)


class TestByteModeStreaming:
    """The kernel-backed streaming path and its char-mode conversion.

    ``use_kernel=True`` (the default) starts appends in byte mode:
    suffixes are batch-normalised with the kernel's translate tables
    and only new hashes are rolled. The first wide-Unicode suffix
    converts the state to the per-character path permanently. Both
    modes — and the transition — must equal from-scratch batch
    refingerprinting at every prefix.
    """

    def test_starts_in_byte_mode_by_default(self):
        assert IncrementalFingerprinter(TINY_CONFIG)._byte_mode

    def test_use_kernel_false_starts_in_char_mode(self):
        config = FingerprintConfig(
            ngram_size=TINY_CONFIG.ngram_size,
            window_size=TINY_CONFIG.window_size,
            use_kernel=False,
        )
        inc = IncrementalFingerprinter(config)
        assert not inc._byte_mode
        inc.append(SECRET_TEXT)
        assert inc.current().hashes == BATCH.fingerprint(SECRET_TEXT).hashes

    def test_wide_suffix_converts_permanently(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("latin-1 prefix kept as bytes ")
        assert inc._byte_mode
        inc.append("İstanbul ")
        assert not inc._byte_mode
        inc.append("back to ascii, but char mode stays")
        assert not inc._byte_mode

    def test_conversion_preserves_equivalence(self):
        text_parts = [
            "The µ-service café ",  # byte mode (Latin-1)
            "meets İstanbul ẞ ",  # triggers conversion
            "and continues in plain ascii after that.",
        ]
        inc = IncrementalFingerprinter(TINY_CONFIG)
        accumulated = ""
        for part in text_parts:
            inc.append(part)
            accumulated += part
            batch = BATCH.fingerprint(accumulated)
            current = inc.current()
            assert current.hashes == batch.hashes
            assert current.selections == batch.selections

    @given(chunks)
    @settings(max_examples=60)
    def test_byte_mode_equals_batch_at_every_prefix(self, pieces):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        accumulated = ""
        for piece in pieces:
            inc.append(piece)
            accumulated += piece
            assert inc._byte_mode  # ascii chunks never convert
            batch = BATCH.fingerprint(accumulated)
            current = inc.current()
            assert current.hashes == batch.hashes
            assert current.selections == batch.selections

    @given(chunks)
    @settings(max_examples=40)
    def test_byte_mode_equals_char_mode_at_every_prefix(self, pieces):
        """Differential: the two streaming modes against each other."""
        char_config = FingerprintConfig(
            ngram_size=TINY_CONFIG.ngram_size,
            window_size=TINY_CONFIG.window_size,
            use_kernel=False,
        )
        byte_inc = IncrementalFingerprinter(TINY_CONFIG)
        char_inc = IncrementalFingerprinter(char_config)
        for piece in pieces:
            assert byte_inc.append(piece) == char_inc.append(piece)
            assert byte_inc.current().hashes == char_inc.current().hashes
            assert (
                byte_inc.current().selections == char_inc.current().selections
            )

    @given(unicode_chunks)
    @settings(max_examples=60)
    def test_mixed_mode_equals_batch_at_every_prefix(self, pieces):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        accumulated = ""
        for piece in pieces:
            inc.append(piece)
            accumulated += piece
            batch = BATCH.fingerprint(accumulated)
            current = inc.current()
            assert current.hashes == batch.hashes
            assert current.selections == batch.selections


def _sel_triples(fingerprint):
    return {(s.value, s.orig_start, s.orig_end) for s in fingerprint.selections}


def _run_edit_script(data, config, alphabet, max_edits=8):
    """Draw and apply a random edit script; yield (text, inc) per step."""
    inc = IncrementalFingerprinter(config)
    text = data.draw(st.text(alphabet=alphabet, max_size=80), label="initial")
    inc.append(text)
    yield text, inc
    for i in range(data.draw(st.integers(0, max_edits), label="n_edits")):
        kind = data.draw(
            st.sampled_from(["replace", "delete", "insert", "append"]),
            label=f"kind{i}",
        )
        length = len(text)
        start = data.draw(st.integers(0, length), label=f"start{i}")
        end = data.draw(st.integers(start, length), label=f"end{i}")
        piece = data.draw(
            st.text(alphabet=alphabet, max_size=20), label=f"piece{i}"
        )
        if kind == "append":
            inc.append(piece)
            text += piece
        elif kind == "delete":
            inc.delete(start, end)
            text = text[:start] + text[end:]
        elif kind == "insert":
            inc.replace(start, start, piece)
            text = text[:start] + piece + text[start:]
        else:
            inc.replace(start, end, piece)
            text = text[:start] + piece + text[end:]
        yield text, inc


class TestReplaceDelete:
    """Edit-local ``replace``/``delete`` against the batch oracle."""

    def test_replace_middle_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        edited = SECRET_TEXT[:40] + "REDACTED" + SECRET_TEXT[52:]
        inc.replace(40, 52, "REDACTED")
        expected = BATCH.fingerprint(edited)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections
        assert inc.text_length == len(edited)

    def test_delete_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        inc.delete(10, 30)
        edited = SECRET_TEXT[:10] + SECRET_TEXT[30:]
        expected = BATCH.fingerprint(edited)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections

    def test_replace_at_end_equals_append(self):
        a = IncrementalFingerprinter(TINY_CONFIG)
        b = IncrementalFingerprinter(TINY_CONFIG)
        a.append(SECRET_TEXT)
        b.append(SECRET_TEXT)
        n = len(SECRET_TEXT)
        assert a.replace(n, n, " and more") == b.append(" and more")
        assert a.current().hashes == b.current().hashes
        assert a.current().selections == b.current().selections

    def test_delete_everything_empties_state(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        inc.delete(0, len(SECRET_TEXT))
        assert inc.current().is_empty()
        assert inc.text_length == 0
        # The state must still accept appends afterwards.
        inc.append(SECRET_TEXT)
        assert inc.current().hashes == BATCH.fingerprint(SECRET_TEXT).hashes

    def test_empty_replace_is_noop(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        before = inc.current()
        assert inc.replace(5, 5, "") == 0
        assert inc.current().selections == before.selections

    def test_out_of_range_raises(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("short")
        with pytest.raises(ValueError):
            inc.replace(3, 99, "x")
        with pytest.raises(ValueError):
            inc.replace(-1, 2, "x")
        with pytest.raises(ValueError):
            inc.replace(4, 2, "x")

    def test_wide_replacement_converts_mode(self):
        # A wide-Unicode replacement chunk must flip byte mode to char
        # mode exactly like a wide append does, preserving equivalence.
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("plain ascii paragraph about nothing much")
        assert inc._byte_mode
        inc.replace(6, 11, "İstanbul ẞ")
        assert not inc._byte_mode
        edited = "plain İstanbul ẞ paragraph about nothing much"
        expected = BATCH.fingerprint(edited)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections

    def test_replace_matches_reference_pipeline(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        inc.replace(20, 25, "edits")
        edited = SECRET_TEXT[:20] + "edits" + SECRET_TEXT[25:]
        reference = BATCH.fingerprint_reference(edited)
        current = inc.current()
        assert current.hashes == reference.hashes
        assert current.selections == reference.selections

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_ascii_edit_scripts_equal_batch(self, data):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        batch = Fingerprinter(config)
        alphabet = string.ascii_letters + string.digits + " .,!"
        for text, inc in _run_edit_script(data, config, alphabet):
            expected = batch.fingerprint(text)
            current = inc.current()
            assert current.hashes == expected.hashes
            assert current.selections == expected.selections

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_unicode_edit_scripts_equal_batch(self, data):
        """Full-Unicode edits (incl. the lower-expanding İ) stay
        field-identical to from-scratch batch fingerprints."""
        config = FingerprintConfig(ngram_size=4, window_size=3)
        batch = Fingerprinter(config)
        for text, inc in _run_edit_script(data, config, UNICODE_ALPHABET):
            expected = batch.fingerprint(text)
            current = inc.current()
            assert current.hashes == expected.hashes
            assert current.selections == expected.selections

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_edits_window_one_and_wide_windows(self, data):
        for config in (
            FingerprintConfig(ngram_size=2, window_size=1),
            FingerprintConfig(ngram_size=3, window_size=7),
        ):
            batch = Fingerprinter(config)
            for text, inc in _run_edit_script(
                data, config, UNICODE_ALPHABET, max_edits=5
            ):
                expected = batch.fingerprint(text)
                current = inc.current()
                assert current.hashes == expected.hashes
                assert current.selections == expected.selections


class TestEditLocality:
    """Winnowing edit-locality: an edit only perturbs fingerprints
    within a ``k + w - 1`` kept-character radius of the change.

    Every selected fingerprint of the edited text whose n-gram lies
    outside the dirty radius must be byte-identical — same hash value,
    same original-offset span (shifted by the edit's length delta when
    it sits after the edit) — to a pre-edit selection, and the
    incremental delta pipeline must agree with the reference pipeline
    on all of them.
    """

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_selections_outside_dirty_radius_are_preserved(self, data):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        n, w = config.ngram_size, config.window_size
        batch = Fingerprinter(config)
        text = data.draw(
            st.text(alphabet=UNICODE_ALPHABET, min_size=20, max_size=120),
            label="text",
        )
        start = data.draw(st.integers(0, len(text)), label="start")
        end = data.draw(st.integers(start, len(text)), label="end")
        piece = data.draw(
            st.text(alphabet=UNICODE_ALPHABET, max_size=15), label="piece"
        )
        edited = text[:start] + piece + text[end:]
        delta = len(piece) - (end - start)

        old_ref = batch.fingerprint_reference(text)
        new_ref = batch.fingerprint_reference(edited)

        inc = IncrementalFingerprinter(config)
        inc.append(text)
        inc.replace(start, end, piece)
        current = inc.current()
        # The delta pipeline agrees with the reference everywhere, so in
        # particular outside the radius selections are byte-identical.
        assert current.hashes == new_ref.hashes
        assert current.selections == new_ref.selections

        # Locality: recover each new selection's normalised position and
        # classify against the dirty radius. Positions are recovered via
        # offset bisection; İ expansion can duplicate offsets, so the
        # radius carries a 2-position slack on each side (conservative —
        # only shrinks the asserted-clean region).
        norm_new = normalize(edited)
        lo = bisect_left(norm_new.offsets, start)
        m_new = bisect_left(norm_new.offsets, start + len(piece)) - lo
        dirty_lo = lo - n - w + 2 - 2
        dirty_hi = lo + m_new + w - 2 + 2
        old_triples = _sel_triples(old_ref)
        for sel in new_ref.selections:
            p = bisect_left(norm_new.offsets, sel.orig_start)
            if p + n - 1 < dirty_lo:
                assert (sel.value, sel.orig_start, sel.orig_end) in old_triples
            elif p > dirty_hi:
                assert (
                    sel.value,
                    sel.orig_start - delta,
                    sel.orig_end - delta,
                ) in old_triples

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_prefix_selections_not_recomputed(self, data):
        """White-box: selections well before the edit are the *same
        objects* after a replace — the delta path spliced, not rebuilt.
        """
        config = FingerprintConfig(ngram_size=4, window_size=3)
        n, w = config.ngram_size, config.window_size
        text = data.draw(
            st.text(
                alphabet=string.ascii_lowercase + " ",
                min_size=60,
                max_size=120,
            ),
            label="text",
        )
        start = data.draw(st.integers(40, len(text)), label="start")
        end = data.draw(st.integers(start, len(text)), label="end")
        piece = data.draw(
            st.text(alphabet=string.ascii_lowercase, max_size=10),
            label="piece",
        )
        inc = IncrementalFingerprinter(config)
        inc.append(text)
        if len(inc._values) <= w:
            return  # wholesale-rebuild fallback path, no splice to pin
        before = {id(f): f for f in inc._sel_fp}
        inc.replace(start, end, piece)
        radius = n + w - 1
        for fp in inc._sel_fp:
            if fp.orig_end <= start - radius:
                assert id(fp) in before


class TestSplitEdit:
    """Block-diff primitive behind EditBuffer (DESIGN.md §13)."""

    def test_equal_texts_return_none(self):
        from repro.fingerprint.incremental import _split_edit

        assert _split_edit("", "") is None
        assert _split_edit("same text", "same text") is None

    @pytest.mark.parametrize(
        "old,new",
        [
            ("hello world", "hello brave world"),   # insertion
            ("hello brave world", "hello world"),   # deletion
            ("hello world", "hello, world"),        # single char
            ("hello world", "hello worlds"),        # trailing append
            ("hello world", "ahello world"),        # leading insert
            ("", "from nothing"),                   # creation
            ("to nothing", ""),                     # wipe
            ("aaaa", "aaaaaaa"),                    # ambiguous repeats
            ("abcabc", "abcabcabc"),                # repeated blocks
            ("x" * 5000 + "tail", "x" * 5000 + "mid" + "tail"),
        ],
    )
    def test_reconstruction_identity(self, old, new):
        from repro.fingerprint.incremental import _split_edit

        start, end, repl = _split_edit(old, new)
        assert 0 <= start <= end <= len(old)
        assert new == old[:start] + repl + old[end:]

    def test_keystroke_in_large_text_is_minimal(self):
        from repro.fingerprint.incremental import _split_edit

        old = "paragraph text " * 500
        new = old[:4000] + "X" + old[4000:]
        start, end, repl = _split_edit(old, new)
        assert (start, end, repl) == (4000, 4000, "X")


class TestEditBuffer:
    def test_states_equal_batch_at_every_step(self):
        from repro.fingerprint.incremental import EditBuffer

        buffer = EditBuffer(TINY_CONFIG)
        states = [
            "",
            "the quick brown fox",
            "the quick brown fox jumps",       # append
            "the quick red fox jumps",          # mid substitution
            "the quick red fox",                # tail deletion
            "prefix the quick red fox",         # head insertion
            "the quick red fox",                # head deletion
            SECRET_TEXT,                        # full rewrite
        ]
        for state in states:
            fingerprint = buffer.update(state)
            want = BATCH.fingerprint(state)
            assert fingerprint.hashes == want.hashes
            assert [
                (s.value, s.orig_start, s.orig_end)
                for s in fingerprint.selections
            ] == [
                (s.value, s.orig_start, s.orig_end)
                for s in want.selections
            ]
            assert buffer.text == state

    def test_identical_update_is_a_noop(self):
        from repro.fingerprint.incremental import EditBuffer

        buffer = EditBuffer(TINY_CONFIG, SECRET_TEXT)
        edits_before = buffer.delta_edits
        first = buffer.update(SECRET_TEXT)
        second = buffer.update(SECRET_TEXT)
        assert buffer.delta_edits == edits_before  # no splice applied
        assert second.hashes == first.hashes

    def test_counts_delta_edits_vs_full_builds(self):
        from repro.fingerprint.incremental import EditBuffer

        buffer = EditBuffer(TINY_CONFIG)
        assert (buffer.delta_edits, buffer.full_builds) == (0, 1)
        buffer.update("the quick brown fox jumps over the dog")
        buffer.update("the quick brown fox jumps over the dogs")
        assert buffer.delta_edits == 2

    def test_initial_text_equals_batch(self):
        from repro.fingerprint.incremental import EditBuffer

        buffer = EditBuffer(TINY_CONFIG, SECRET_TEXT)
        assert buffer.current().hashes == BATCH.fingerprint(SECRET_TEXT).hashes

    @given(chunks)
    @settings(max_examples=40, deadline=None)
    def test_property_arbitrary_state_sequences_equal_batch(self, pieces):
        """Any sequence of full-text states — each diffed to a splice —
        fingerprints identically to the batch pipeline."""
        from repro.fingerprint.incremental import EditBuffer

        buffer = EditBuffer(TINY_CONFIG)
        text = ""
        for piece in pieces:
            # Grow a state by mixing append/insert/delete of the piece.
            cut = len(text) // 2
            text = text[:cut] + piece + text[cut + len(piece) // 2 :]
            fingerprint = buffer.update(text)
            assert fingerprint.hashes == BATCH.fingerprint(text).hashes
