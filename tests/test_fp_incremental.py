"""Tests for incremental fingerprinting, including batch equivalence."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import FingerprintConfig, TINY_CONFIG
from repro.fingerprint.incremental import IncrementalFingerprinter

from conftest import SECRET_TEXT

BATCH = Fingerprinter(TINY_CONFIG)

chunks = st.lists(
    st.text(alphabet=string.ascii_letters + string.digits + " .,!",
            min_size=0, max_size=25),
    min_size=0,
    max_size=12,
)

#: Full-Unicode chunk alphabet: the lone lower-expanding code point
#: (U+0130 İ), capital sharp s, ligatures, accented letters, CJK.
UNICODE_ALPHABET = (
    string.ascii_letters + string.digits + " .,!" + "İıẞßﬁﬂÄäÖöÑñÇçÉé北京"
)
unicode_chunks = st.lists(
    st.text(alphabet=UNICODE_ALPHABET, min_size=0, max_size=25),
    min_size=0,
    max_size=12,
)


class TestIncremental:
    def test_single_append_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append(SECRET_TEXT)
        assert inc.current().hashes == BATCH.fingerprint(SECRET_TEXT).hashes

    def test_char_by_char_equals_batch(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        for ch in SECRET_TEXT:
            inc.append(ch)
        batch = BATCH.fingerprint(SECRET_TEXT)
        current = inc.current()
        assert current.hashes == batch.hashes
        assert current.selections == batch.selections

    def test_empty_state(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        assert inc.current().is_empty()
        assert inc.text_length == 0

    def test_text_length_counts_original_chars(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("Hello, World!")
        assert inc.text_length == len("Hello, World!")

    def test_append_returns_new_selection_count(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        total = 0
        for ch in SECRET_TEXT:
            total += inc.append(ch)
        # The deque-path selections match the final fingerprint size
        # (short-text partial selections are reported separately).
        assert total >= len(inc.current()) - 1

    def test_prefix_consistency(self):
        """Every intermediate state equals the batch fingerprint of the
        prefix typed so far — the per-keystroke use case."""
        inc = IncrementalFingerprinter(TINY_CONFIG)
        prefix = ""
        for ch in SECRET_TEXT[:80]:
            prefix += ch
            inc.append(ch)
            assert inc.current().hashes == BATCH.fingerprint(prefix).hashes

    @given(chunks)
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence_arbitrary_chunks(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        batch = Fingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        expected = batch.fingerprint(text)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections

    @given(unicode_chunks)
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence_unicode_chunks(self, pieces):
        """Batch == incremental on full-Unicode input, including the
        lower-expanding İ (the fingerprint-pipeline crash regression)."""
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        batch = Fingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        expected = batch.fingerprint(text)
        current = inc.current()
        assert current.hashes == expected.hashes
        assert current.selections == expected.selections

    @given(chunks)
    @settings(max_examples=30, deadline=None)
    def test_property_spans_map_into_original(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        text = ""
        for piece in pieces:
            text += piece
            inc.append(piece)
        for selection in inc.current().selections:
            assert 0 <= selection.orig_start < selection.orig_end <= len(text)


class TestUnicodeRegression:
    """The lowercase-expansion crash: 'İ'.lower() is two code points."""

    def test_dotted_capital_i_append_does_not_crash(self):
        # Before the fix, the incremental normaliser appended both
        # expansion products but one offset entry, so current() died
        # mapping selections back to original offsets.
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("İ" * 10)
        assert inc.current().hashes == BATCH.fingerprint("İ" * 10).hashes

    def test_char_by_char_unicode_equals_batch(self):
        text = "İstanbul ve İzmir: STRAẞE ﬁle ﬂow, naïve 北京 2024!"
        inc = IncrementalFingerprinter(TINY_CONFIG)
        prefix = ""
        for ch in text:
            prefix += ch
            inc.append(ch)
            assert inc.current().hashes == BATCH.fingerprint(prefix).hashes
        assert inc.current().selections == BATCH.fingerprint(text).selections

    def test_combining_dot_product_is_dropped(self):
        # Normalised stream must match the batch normaliser exactly:
        # one 'i' per İ, never the combining dot.
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("İİ")
        assert inc._norm_chars == ["i", "i"]
        assert inc._offsets == [0, 1]


class TestAppendCountBoundary:
    """append()'s return value must reconcile with current()."""

    def test_partial_window_reports_first_selection(self):
        # Bug: with fewer hashes than window_size, append() returned 0
        # while current() already reported one selected hash.
        inc = IncrementalFingerprinter(TINY_CONFIG)  # ngram 6, window 3
        reported = inc.append("abcdef")  # exactly one n-gram hash
        assert len(inc.current()) == 1
        assert reported == 1

    def test_count_equals_window_size_boundary(self):
        # 8 chars under TINY_CONFIG yield exactly window_size hashes:
        # the deque phase's first selection is the same rightmost
        # minimum the partial scans already reported — counted once.
        inc = IncrementalFingerprinter(TINY_CONFIG)
        total = 0
        for ch in "abcdefgh":
            total += inc.append(ch)
        assert len(inc._values) == TINY_CONFIG.window_size
        assert total == len(inc._reported)  # at-most-once per position
        assert total >= len(inc.current().selections)

    @given(chunks)
    @settings(max_examples=60, deadline=None)
    def test_counts_cover_current_selection_at_every_prefix(self, pieces):
        config = FingerprintConfig(ngram_size=4, window_size=3)
        inc = IncrementalFingerprinter(config)
        total = 0
        for piece in pieces:
            total += inc.append(piece)
            # Everything current() reports has been counted by some
            # append() — including during the partial window.
            assert total >= len(inc.current().selections)
        assert total == len(inc._reported)


class TestByteModeStreaming:
    """The kernel-backed streaming path and its char-mode conversion.

    ``use_kernel=True`` (the default) starts appends in byte mode:
    suffixes are batch-normalised with the kernel's translate tables
    and only new hashes are rolled. The first wide-Unicode suffix
    converts the state to the per-character path permanently. Both
    modes — and the transition — must equal from-scratch batch
    refingerprinting at every prefix.
    """

    def test_starts_in_byte_mode_by_default(self):
        assert IncrementalFingerprinter(TINY_CONFIG)._byte_mode

    def test_use_kernel_false_starts_in_char_mode(self):
        config = FingerprintConfig(
            ngram_size=TINY_CONFIG.ngram_size,
            window_size=TINY_CONFIG.window_size,
            use_kernel=False,
        )
        inc = IncrementalFingerprinter(config)
        assert not inc._byte_mode
        inc.append(SECRET_TEXT)
        assert inc.current().hashes == BATCH.fingerprint(SECRET_TEXT).hashes

    def test_wide_suffix_converts_permanently(self):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        inc.append("latin-1 prefix kept as bytes ")
        assert inc._byte_mode
        inc.append("İstanbul ")
        assert not inc._byte_mode
        inc.append("back to ascii, but char mode stays")
        assert not inc._byte_mode

    def test_conversion_preserves_equivalence(self):
        text_parts = [
            "The µ-service café ",  # byte mode (Latin-1)
            "meets İstanbul ẞ ",  # triggers conversion
            "and continues in plain ascii after that.",
        ]
        inc = IncrementalFingerprinter(TINY_CONFIG)
        accumulated = ""
        for part in text_parts:
            inc.append(part)
            accumulated += part
            batch = BATCH.fingerprint(accumulated)
            current = inc.current()
            assert current.hashes == batch.hashes
            assert current.selections == batch.selections

    @given(chunks)
    @settings(max_examples=60)
    def test_byte_mode_equals_batch_at_every_prefix(self, pieces):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        accumulated = ""
        for piece in pieces:
            inc.append(piece)
            accumulated += piece
            assert inc._byte_mode  # ascii chunks never convert
            batch = BATCH.fingerprint(accumulated)
            current = inc.current()
            assert current.hashes == batch.hashes
            assert current.selections == batch.selections

    @given(chunks)
    @settings(max_examples=40)
    def test_byte_mode_equals_char_mode_at_every_prefix(self, pieces):
        """Differential: the two streaming modes against each other."""
        char_config = FingerprintConfig(
            ngram_size=TINY_CONFIG.ngram_size,
            window_size=TINY_CONFIG.window_size,
            use_kernel=False,
        )
        byte_inc = IncrementalFingerprinter(TINY_CONFIG)
        char_inc = IncrementalFingerprinter(char_config)
        for piece in pieces:
            assert byte_inc.append(piece) == char_inc.append(piece)
            assert byte_inc.current().hashes == char_inc.current().hashes
            assert (
                byte_inc.current().selections == char_inc.current().selections
            )

    @given(unicode_chunks)
    @settings(max_examples=60)
    def test_mixed_mode_equals_batch_at_every_prefix(self, pieces):
        inc = IncrementalFingerprinter(TINY_CONFIG)
        accumulated = ""
        for piece in pieces:
            inc.append(piece)
            accumulated += piece
            batch = BATCH.fingerprint(accumulated)
            current = inc.current()
            assert current.hashes == batch.hashes
            assert current.selections == batch.selections
