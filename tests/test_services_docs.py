"""Tests for the Docs-like AJAX service."""

import pytest

from repro.browser import Browser
from repro.browser.http import HttpRequest
from repro.errors import ServiceError
from repro.services import DocsService, Network


@pytest.fixture
def setup():
    network = Network()
    docs = DocsService()
    network.register(docs)
    browser = Browser(network)
    return browser, docs


class TestEditor:
    def test_open_editor_creates_document(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        assert editor.doc_id in docs.backend

    def test_open_unknown_doc_rejected(self, setup):
        browser, docs = setup
        with pytest.raises(ServiceError):
            docs.open_editor(browser.new_tab(), "ghost")

    def test_paste_syncs_to_backend(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph()
        assert editor.paste(par, "Some pasted content for the document.")
        stored = docs.backend.get(editor.doc_id)
        assert stored.paragraphs[0][1] == "Some pasted content for the document."

    def test_typing_syncs_every_keystroke(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph()
        delivered = editor.type_text(par, "abc")
        assert delivered == 3
        # Backend saw the final state.
        assert docs.backend.get(editor.doc_id).paragraphs[0][1] == "abc"
        # One sync request per keystroke reached the network.
        sync_requests = [
            r for r in browser.network.requests_to(docs.origin)
            if r.path == "/sync"
        ]
        assert len(sync_requests) == 3

    def test_text_lives_in_dom_not_inputs(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph("DOM text")
        assert par.tag == "div"  # not <input>/<textarea>
        assert par.text_content() == "DOM text"

    def test_delete_paragraph(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph("to be deleted")
        assert editor.delete_paragraph(par)
        assert docs.backend.get(editor.doc_id).paragraphs == []

    def test_reopen_renders_existing_content(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        editor.new_paragraph("persisted content in paragraph one")
        doc_id = editor.doc_id
        editor2 = docs.open_editor(browser.new_tab(), doc_id)
        assert editor2.paragraph_texts() == ["persisted content in paragraph one"]

    def test_paragraph_ids_stable(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph("first")
        par_id = editor.paragraph_id(par)
        editor.set_paragraph_text(par, "edited")
        assert editor.paragraph_id(par) == par_id


class TestBackendProtocol:
    def test_malformed_sync_rejected(self, setup):
        _browser, docs = setup
        response = docs.handle_request(
            HttpRequest("POST", docs.url("/sync"), body="not json")
        )
        assert response.status == 400

    def test_unknown_doc_sync_404(self, setup):
        _browser, docs = setup
        response = docs.handle_request(
            HttpRequest(
                "POST",
                docs.url("/sync"),
                body='{"doc_id": "ghost", "op": "set_paragraph", "par_id": "p", "text": "x"}',
            )
        )
        assert response.status == 404

    def test_unknown_op_rejected(self, setup):
        _browser, docs = setup
        doc = docs.backend.create()
        response = docs.handle_request(
            HttpRequest(
                "POST",
                docs.url("/sync"),
                body=f'{{"doc_id": "{doc.doc_id}", "op": "explode"}}',
            )
        )
        assert response.status == 400

    def test_unknown_path_404(self, setup):
        _browser, docs = setup
        response = docs.handle_request(HttpRequest("GET", docs.url("/nope")))
        assert response.status == 404


class TestDeltaProtocol:
    def test_typing_sends_single_char_deltas(self, setup):
        """The wire carries only the typed character, not the text."""
        import json

        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph()
        editor.type_text(par, "secret")
        sync_bodies = [
            json.loads(r.body)
            for r in browser.network.requests_to(docs.origin)
            if r.path == "/sync" and r.body
        ]
        inserts = [m for m in sync_bodies if m["op"] == "insert"]
        assert len(inserts) == 6
        assert all(len(m["chars"]) == 1 for m in inserts)
        # No single request contains the full word.
        assert all("secret" not in (m.get("chars") or "") for m in inserts)

    def test_deltas_reconstruct_text_on_backend(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph()
        editor.type_text(par, "hello")
        editor.paste(par, " world")
        assert docs.backend.get(editor.doc_id).paragraphs[0][1] == "hello world"

    def test_delete_text_delta(self, setup):
        browser, docs = setup
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph()
        editor.paste(par, "hello cruel world")
        assert editor.delete_text(par, 5, 6)
        assert par.text_content() == "hello world"
        assert docs.backend.get(editor.doc_id).paragraphs[0][1] == "hello world"

    def test_insert_index_clamped(self, setup):
        import json

        from repro.browser.http import HttpRequest

        _browser, docs = setup
        doc = docs.backend.create()
        body = json.dumps(
            {"doc_id": doc.doc_id, "op": "insert", "par_id": "p1",
             "index": 999, "chars": "abc"}
        )
        docs.handle_request(HttpRequest("POST", docs.url("/sync"), body=body))
        body = json.dumps(
            {"doc_id": doc.doc_id, "op": "insert", "par_id": "p1",
             "index": 999, "chars": "def"}
        )
        docs.handle_request(HttpRequest("POST", docs.url("/sync"), body=body))
        assert doc.find_paragraph("p1") == "abcdef"

    def test_delete_on_missing_paragraph_noop(self, setup):
        import json

        from repro.browser.http import HttpRequest

        _browser, docs = setup
        doc = docs.backend.create()
        body = json.dumps(
            {"doc_id": doc.doc_id, "op": "delete", "par_id": "ghost",
             "index": 0, "count": 5}
        )
        response = docs.handle_request(
            HttpRequest("POST", docs.url("/sync"), body=body)
        )
        assert response.ok
