"""Tests for the report renderers."""

from repro.eval.reporting import (
    format_cdf_summary,
    format_counters,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "1" in lines[2]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.startswith("Table 1")

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_column_alignment(self):
        text = format_table(["name", "n"], [["long-name-here", 1], ["x", 22]])
        lines = text.splitlines()
        # Second column starts at the same offset on every data line.
        offsets = {line.index(str(v)) for line, v in zip(lines[2:], [1, 22])}
        assert len(offsets) == 1


class TestFormatSeries:
    def test_named_series(self):
        text = format_series({"s1": [(0, 1.0), (1, 2.0)]}, x_label="rev", y_label="pct")
        assert "[s1]" in text
        assert "0:1.00" in text

    def test_downsampling(self):
        points = [(float(i), float(i)) for i in range(100)]
        text = format_series({"s": points}, max_points=5)
        # 5 points rendered, not 100.
        assert text.count(":") <= 6

    def test_title(self):
        assert format_series({}, title="Figure 9").startswith("Figure 9")


class TestFormatCounters:
    def test_aligned_lines(self):
        text = format_counters(
            {"queries": 12, "hit_rate": 0.5}, title="engine counters"
        )
        lines = text.splitlines()
        assert lines[0] == "engine counters"
        assert "  queries  = 12" in lines
        assert "  hit_rate = 0.50" in lines

    def test_empty(self):
        assert "(no counters)" in format_counters({})


class TestFormatCdfSummary:
    def test_fractions(self):
        text = format_cdf_summary("w1", [10.0, 20.0, 300.0], [30.0, 200.0])
        assert "<= 30 ms: 66.7%" in text
        assert "<= 200 ms: 66.7%" in text

    def test_empty_values(self):
        text = format_cdf_summary("w", [], [30.0])
        assert "0.0%" in text
