"""Differential tests: indexed single-sweep query ≡ reference scan.

The engine's hot path answers Algorithm 1 with one sweep over the
target's hashes against incrementally-maintained inverted indexes
(oldest-owner cache, segment reverse index, authoritative-set cache).
The pre-index implementation is retained as
``disclosing_sources_reference``, which recomputes ownership from the
raw observation maps. These tests drive both paths through arbitrary
observe / edit / remove sequences and assert the reports are identical
in every field — sources, scores, thresholds, matched hashes, ordering,
and candidate counts — in both authoritative modes.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.disclosure import DisclosureEngine
from repro.disclosure.engine import DisclosureReport
from repro.fingerprint.config import FingerprintConfig, TINY_CONFIG

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)

texts = st.text(alphabet=string.ascii_lowercase + " ", min_size=0, max_size=80)
segment_names = st.sampled_from([f"seg-{i}" for i in range(5)])

# (op, segment, text) steps; text is ignored for removes.
steps = st.lists(
    st.tuples(st.sampled_from(["observe", "remove"]), segment_names, texts),
    min_size=0,
    max_size=25,
)


def assert_reports_identical(indexed: DisclosureReport, reference: DisclosureReport):
    """Field-by-field equality, with readable diffs on failure."""
    assert indexed.target_id == reference.target_id
    assert indexed.candidates_checked == reference.candidates_checked
    assert [s.segment_id for s in indexed.sources] == [
        s.segment_id for s in reference.sources
    ]
    for got, expected in zip(indexed.sources, reference.sources):
        assert got.score == expected.score, got.segment_id
        assert got.threshold == expected.threshold, got.segment_id
        assert got.matched_hashes == expected.matched_hashes, got.segment_id
        assert got.kind == expected.kind, got.segment_id
        assert got.doc_id == expected.doc_id, got.segment_id
    assert indexed.sources == reference.sources


def apply_steps(engine, script):
    live = set()
    for op, name, text in script:
        if op == "observe":
            engine.observe(name, text, threshold=0.5)
            live.add(name)
        elif name in live:
            engine.remove(name)
            live.discard(name)
    return live


def check_all_queries(engine, live, probes=()):
    engine.hash_db.check_invariants()
    for name in sorted(live):
        assert_reports_identical(
            # Bypass the decision cache deliberately: the point is to
            # exercise the sweep, not replay a memoised report.
            engine._run_algorithm(
                name, engine.segment_db.get(name).fingerprint, None
            ),
            engine.disclosing_sources_reference(name),
        )
    for probe in probes:
        fp = engine.fingerprint(probe)
        assert_reports_identical(
            engine.disclosing_sources(fingerprint=fp),
            engine.disclosing_sources_reference(fingerprint=fp),
        )


class TestDifferentialSequences:
    @settings(max_examples=60, deadline=None)
    @given(script=steps, probe=texts)
    def test_authoritative(self, script, probe):
        engine = DisclosureEngine(CONFIG)
        live = apply_steps(engine, script)
        check_all_queries(engine, live, probes=[probe])

    @settings(max_examples=60, deadline=None)
    @given(script=steps, probe=texts)
    def test_non_authoritative(self, script, probe):
        engine = DisclosureEngine(CONFIG, authoritative=False)
        live = apply_steps(engine, script)
        check_all_queries(engine, live, probes=[probe])

    @settings(max_examples=40, deadline=None)
    @given(script=steps)
    def test_oldest_owner_index_consistent(self, script):
        engine = DisclosureEngine(CONFIG)
        apply_steps(engine, script)
        db = engine.hash_db
        for h in db.hashes():
            assert db.oldest_owner(h) == db.recompute_oldest_owner(h)

    @settings(max_examples=40, deadline=None)
    @given(script=steps, doc=st.sampled_from(["doc-a", "doc-b"]))
    def test_exclude_doc(self, script, doc):
        engine = DisclosureEngine(CONFIG)
        for i, (op, name, text) in enumerate(script):
            if op == "observe":
                engine.observe(
                    name, text, doc_id="doc-a" if i % 2 else "doc-b"
                )
            elif engine.segment_db.find(name) is not None:
                engine.remove(name)
        for name in engine.segment_db.ids():
            fp = engine.segment_db.get(name).fingerprint
            assert_reports_identical(
                engine._run_algorithm(None, fp, doc),
                engine.disclosing_sources_reference(
                    fingerprint=fp, exclude_doc=doc
                ),
            )


class TestFigure6Migration:
    """Authoritative-ownership migration (the paper's Figure 6 scenario).

    The Interview Tool pastes text into the Wiki; when the Interview
    Tool's copy is later edited away, the Wiki must become the
    authoritative source — and the indexed path must track that
    migration identically to the reference scan at every step.
    """

    TEXT = "the quick brown fox jumps over the lazy dog again and again"
    REPLACEMENT = "completely different words about gardening in the spring"

    def test_migration_matches_reference(self):
        engine = DisclosureEngine(TINY_CONFIG)
        engine.observe("interview", self.TEXT)
        engine.observe("wiki", self.TEXT)
        fp = engine.fingerprint(self.TEXT)

        before = engine.disclosing_sources(fingerprint=fp)
        assert_reports_identical(
            before, engine.disclosing_sources_reference(fingerprint=fp)
        )
        assert before.source_ids() == ["interview"]

        # The edit withdraws the interview tool's claims...
        engine.observe("interview", self.REPLACEMENT)
        after = engine.disclosing_sources(fingerprint=fp)
        assert_reports_identical(
            after, engine.disclosing_sources_reference(fingerprint=fp)
        )
        # ...so the wiki is now the authoritative source.
        assert after.source_ids() == ["wiki"]
        engine.hash_db.check_invariants()

    def test_removal_migration(self):
        engine = DisclosureEngine(TINY_CONFIG)
        engine.observe("first", self.TEXT)
        engine.observe("second", self.TEXT)
        engine.remove("first")
        fp = engine.fingerprint(self.TEXT)
        report = engine.disclosing_sources(fingerprint=fp)
        assert_reports_identical(
            report, engine.disclosing_sources_reference(fingerprint=fp)
        )
        assert report.source_ids() == ["second"]


class DifferentialMachine(RuleBasedStateMachine):
    """Stateful interleaving: every query checks indexed ≡ reference."""

    def __init__(self):
        super().__init__()
        self.engines = {
            True: DisclosureEngine(CONFIG, authoritative=True),
            False: DisclosureEngine(CONFIG, authoritative=False),
        }
        self.live = set()

    @rule(name=segment_names, text=texts)
    def observe(self, name, text):
        for engine in self.engines.values():
            engine.observe(name, text, threshold=0.5)
        self.live.add(name)

    @rule(name=segment_names)
    def remove(self, name):
        if name in self.live:
            for engine in self.engines.values():
                engine.remove(name)
            self.live.discard(name)

    @rule(probe=texts)
    def query_probe(self, probe):
        for engine in self.engines.values():
            fp = engine.fingerprint(probe)
            assert_reports_identical(
                engine.disclosing_sources(fingerprint=fp),
                engine.disclosing_sources_reference(fingerprint=fp),
            )

    @rule(name=segment_names)
    def query_tracked(self, name):
        if name not in self.live:
            return
        for engine in self.engines.values():
            fp = engine.segment_db.get(name).fingerprint
            assert_reports_identical(
                engine._run_algorithm(name, fp, None),
                engine.disclosing_sources_reference(name),
            )

    @invariant()
    def indexes_consistent(self):
        for engine in self.engines.values():
            engine.hash_db.check_invariants()


DifferentialMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
TestDifferentialStateful = DifferentialMachine.TestCase
