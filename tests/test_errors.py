"""Tests for the exception hierarchy."""

import pytest

from repro import errors
from repro.tdm.labels import Label


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_subsystem_partitions(self):
        assert issubclass(errors.UnknownSegmentError, errors.DisclosureError)
        assert issubclass(errors.UnknownServiceError, errors.PolicyError)
        assert issubclass(errors.TagError, errors.PolicyError)
        assert issubclass(errors.SuppressionError, errors.PolicyError)
        assert issubclass(errors.DOMError, errors.BrowserError)
        assert issubclass(errors.RequestBlocked, errors.NetworkError)
        assert issubclass(errors.DocumentNotFound, errors.ServiceError)


class TestErrorPayloads:
    def test_unknown_segment_carries_id(self):
        err = errors.UnknownSegmentError("seg-1")
        assert err.segment_id == "seg-1"
        assert "seg-1" in str(err)

    def test_unknown_service_carries_id(self):
        err = errors.UnknownServiceError("https://x.example")
        assert err.service == "https://x.example"

    def test_request_blocked_carries_url_and_reason(self):
        err = errors.RequestBlocked("https://x.example/api", "policy")
        assert err.url == "https://x.example/api"
        assert err.reason == "policy"
        assert "policy" in str(err)

    def test_document_not_found_carries_id(self):
        assert errors.DocumentNotFound("d-1").doc_id == "d-1"

    def test_disclosure_violation_computes_offending(self):
        err = errors.DisclosureViolation(
            "svc", Label.of("ti", "tw"), Label.of("tw")
        )
        assert err.offending_tags == Label.of("ti")
        assert "ti" in str(err)
        assert err.service == "svc"
