"""Property-based tests for labels, the disclosure engine, and crypto."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disclosure import DisclosureEngine
from repro.disclosure.metrics import authoritative_hashes
from repro.fingerprint.config import FingerprintConfig
from repro.plugin.crypto import UploadCipher
from repro.tdm.labels import Label, SegmentLabel
from repro.util.stats import cdf_points, percentile

CONFIG = FingerprintConfig(ngram_size=5, window_size=4)

tag_names = st.sets(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    max_size=6,
)
prose = st.text(
    alphabet=string.ascii_letters + " .,", min_size=0, max_size=200
)


class TestLabelLattice:
    @given(tag_names, tag_names)
    def test_union_is_upper_bound(self, a, b):
        la, lb = Label.of(*a), Label.of(*b)
        assert la <= (la | lb)
        assert lb <= (la | lb)

    @given(tag_names, tag_names, tag_names)
    def test_subset_transitive(self, a, b, c):
        la, lb, lc = Label.of(*a), Label.of(*b), Label.of(*c)
        if la <= lb and lb <= lc:
            assert la <= lc

    @given(tag_names)
    def test_empty_flows_everywhere(self, a):
        assert Label.of() <= Label.of(*a)

    @given(tag_names, tag_names)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        result = Label.of(*a) - Label.of(*b)
        assert not (result.tags & Label.of(*b).tags)

    @given(tag_names, tag_names)
    def test_flow_iff_no_offending_tags(self, a, b):
        label = SegmentLabel.of(explicit=a)
        privilege = Label.of(*b)
        assert label.flows_to(privilege) == (
            len(label.offending_tags(privilege)) == 0
        )


class TestSegmentLabelProperties:
    @given(tag_names, tag_names, tag_names)
    def test_effective_subset_of_full(self, explicit, implicit, suppressed):
        label = SegmentLabel.of(explicit, implicit, suppressed)
        assert label.effective() <= label.full()

    @given(tag_names, tag_names)
    def test_propagating_subset_of_explicit(self, explicit, implicit):
        label = SegmentLabel.of(explicit, implicit)
        assert label.propagating() <= label.explicit

    @given(tag_names, tag_names, tag_names)
    def test_suppression_monotone(self, explicit, implicit, to_suppress):
        """Suppressing tags never enlarges the effective label."""
        label = SegmentLabel.of(explicit, implicit)
        suppressed = label
        for name in to_suppress:
            suppressed = suppressed.suppress(name)
        assert suppressed.effective() <= label.effective()

    @given(tag_names, tag_names)
    def test_add_implicit_keeps_flow_check_monotone(self, explicit, implicit):
        """Adding implicit tags can only restrict where a segment flows."""
        base = SegmentLabel.of(explicit)
        extended = base.add_implicit(implicit)
        privilege = Label.of(*explicit)
        if extended.flows_to(privilege):
            assert base.flows_to(privilege)


class TestDisclosureEngineProperties:
    @given(st.lists(prose, min_size=1, max_size=5), prose)
    @settings(max_examples=40, deadline=None)
    def test_scores_in_unit_interval(self, sources, target):
        engine = DisclosureEngine(CONFIG)
        for i, text in enumerate(sources):
            engine.observe(f"s{i}", text, threshold=0.0)
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(target))
        for source in report.sources:
            assert 0.0 < source.score <= 1.0

    @given(st.lists(prose, min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_authoritative_sets_disjoint(self, texts):
        """Each hash has at most one authoritative owner (§4.3)."""
        engine = DisclosureEngine(CONFIG)
        for i, text in enumerate(texts):
            engine.observe(f"s{i}", text)
        owned = []
        for record in engine.segment_db:
            owned.append(authoritative_hashes(record, engine.hash_db))
        for i in range(len(owned)):
            for j in range(i + 1, len(owned)):
                assert not (owned[i] & owned[j])

    @given(prose)
    @settings(max_examples=40, deadline=None)
    def test_exact_copy_always_detected(self, text):
        engine = DisclosureEngine(CONFIG)
        record = engine.observe("src", text, threshold=0.5)
        if record.fingerprint.is_empty():
            return
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(text))
        assert "src" in report.source_ids()

    @given(prose, prose)
    @settings(max_examples=40, deadline=None)
    def test_remove_is_clean(self, a, b):
        engine = DisclosureEngine(CONFIG)
        engine.observe("a", a)
        engine.observe("b", b)
        engine.remove("a")
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(a))
        assert "a" not in report.source_ids()


class TestCipherProperties:
    @given(st.text(max_size=500))
    def test_roundtrip(self, text):
        cipher = UploadCipher("property-key")
        assert cipher.decrypt(cipher.encrypt(text)) == text

    @given(st.text(min_size=1, max_size=200))
    def test_marker_never_in_plain(self, text):
        cipher = UploadCipher("property-key")
        assert UploadCipher.is_encrypted(cipher.encrypt(text))


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    def test_percentile_bounds(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    def test_cdf_points_monotone(self, values):
        points = cdf_points(values)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0
