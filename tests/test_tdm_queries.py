"""Tests for administrative queries over model state."""

import pytest

from repro.fingerprint.config import TINY_CONFIG
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.tdm.model import Suppression
from repro.tdm.queries import (
    exposure_report,
    explain_segment,
    segments_tagged,
    services_holding,
    suppression_summary,
)

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT

ITOOL = "https://itool.example"
WIKI = "https://wiki.example"
DOCS = "https://docs.example"


@pytest.fixture
def model():
    policies = PolicyStore()
    policies.register_service(
        ITOOL, privilege=Label.of("ti"), confidentiality=Label.of("ti")
    )
    policies.register_service(
        WIKI, privilege=Label.of("tw", "ti"), confidentiality=Label.of("tw")
    )
    policies.register_service(DOCS)
    model = TextDisclosureModel(policies, TINY_CONFIG)
    model.observe(ITOOL, "docA", [("docA#p0", SECRET_TEXT)])
    model.observe(WIKI, "docW", [("docW#p0", OTHER_TEXT)])
    # The secret also lands in the wiki (allowed: Lp includes ti).
    decision = model.check_upload(WIKI, "docB", [("docB#p0", SECRET_TEXT)])
    model.commit_upload(WIKI, "docB", [("docB#p0", SECRET_TEXT)], decision)
    return model


class TestSegmentsTagged:
    def test_explicit_tag(self, model):
        assert "docA#p0" in segments_tagged(model, "ti")

    def test_implicit_tag_counts(self, model):
        # The wiki copy inherits ti implicitly; effective label carries it.
        assert "docB#p0" in segments_tagged(model, "ti")

    def test_unknown_tag_empty(self, model):
        assert segments_tagged(model, "ghost") == []


class TestServicesHolding:
    def test_exposure_of_interview_data(self, model):
        held = services_holding(model, "ti")
        assert ITOOL in held
        assert WIKI in held  # the committed copy widened the surface
        assert DOCS not in held

    def test_wiki_tag_stays_in_wiki(self, model):
        assert services_holding(model, "tw") == frozenset({WIKI})


class TestSuppressionSummary:
    def test_counts(self, model):
        suppression = Suppression.of("ti", "alice", "need to share")
        model.check_upload(
            DOCS, "docC", [("docC#p0", SECRET_TEXT)],
            suppressions={"docC#p0": [suppression]},
        )
        summary = suppression_summary(model)
        assert summary["by_user"]["alice"] == 1
        assert summary["by_tag"]["ti"] == 1

    def test_empty_log(self, model):
        summary = suppression_summary(model)
        assert not summary["by_user"]


class TestExplainSegment:
    def test_provenance_fields(self, model):
        explanation = explain_segment(model, "docB#p0")
        assert "tw" in explanation.explicit
        assert "ti" in explanation.implicit
        assert WIKI in explanation.locations

    def test_describe_readable(self, model):
        text = explain_segment(model, "docB#p0").describe()
        assert "docB#p0" in text
        assert "inherited via similarity" in text

    def test_suppression_events_included(self, model):
        suppression = Suppression.of("ti", "bob", "partner review")
        decision = model.check_upload(
            DOCS, "docC", [("docC#p0", SECRET_TEXT)],
            suppressions={"docC#p0": [suppression], "docC": [suppression]},
        )
        model.commit_upload(DOCS, "docC", [("docC#p0", SECRET_TEXT)], decision)
        explanation = explain_segment(model, "docC#p0")
        assert any("bob suppressed ti" in e for e in explanation.suppression_events)

    def test_unknown_segment_empty_explanation(self, model):
        explanation = explain_segment(model, "nowhere")
        assert explanation.explicit == ()
        assert explanation.locations == ()


class TestExposureReport:
    def test_rows_sorted_by_tag(self, model):
        rows = exposure_report(model)
        names = [name for name, _segs, _svcs in rows]
        assert names == sorted(names)
        assert "ti" in names and "tw" in names

    def test_counts_consistent(self, model):
        for name, n_segments, n_services in exposure_report(model):
            assert n_segments == len(segments_tagged(model, name))
            assert n_services == len(services_holding(model, name))
