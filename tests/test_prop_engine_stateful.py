"""Stateful property testing of the disclosure engine (hypothesis).

A random interleaving of observe / edit / remove / query operations is
checked against a simple reference model on every step:

* an exact copy of a live segment's text is always detected;
* a removed segment is never reported;
* authoritative hash sets stay pairwise disjoint;
* the databases' size counters stay consistent.

A second machine interleaves plain and suppression-consuming policy
lookups through :class:`PolicyLookup` and checks that every suppression
is consumed — and audited — exactly once per lookup, even when the
decision cache is hot with the unsuppressed (violating) decision.
"""

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.disclosure import DisclosureEngine
from repro.disclosure.metrics import authoritative_hashes
from repro.fingerprint.config import FingerprintConfig
from repro.plugin.lookup import PolicyLookup
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.tdm.model import Suppression

from conftest import SECRET_TEXT

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)

texts = st.text(
    alphabet=string.ascii_lowercase + " ", min_size=0, max_size=80
)
segment_names = st.sampled_from([f"seg-{i}" for i in range(6)])


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = DisclosureEngine(CONFIG)
        self.live = {}  # segment id -> current text

    @rule(name=segment_names, text=texts)
    def observe(self, name, text):
        self.engine.observe(name, text, threshold=0.5)
        self.live[name] = text

    @rule(name=segment_names)
    def remove(self, name):
        if name in self.live:
            self.engine.remove(name)
            del self.live[name]

    @rule(name=segment_names, probe=texts)
    def query(self, name, probe):
        report = self.engine.disclosing_sources(
            fingerprint=self.engine.fingerprint(probe)
        )
        reported = set(report.source_ids())
        # Dead segments never resurface.
        assert reported <= set(self.live)
        for source in report.sources:
            assert 0.0 < source.score <= 1.0

    @rule(name=segment_names)
    def exact_copy_detected(self, name):
        if name not in self.live:
            return
        text = self.live[name]
        fp = self.engine.fingerprint(text)
        if fp.is_empty():
            return
        report = self.engine.disclosing_sources(fingerprint=fp)
        # The segment itself (or an identical earlier twin that owns the
        # hashes) must be reported.
        reported = set(report.source_ids())
        twins = {n for n, t in self.live.items() if t == text}
        assert reported & twins

    @invariant()
    def segment_count_consistent(self):
        assert len(self.engine.segment_db) == len(self.live)

    @invariant()
    def authoritative_sets_disjoint(self):
        owned = [
            authoritative_hashes(record, self.engine.hash_db)
            for record in self.engine.segment_db
        ]
        for i in range(len(owned)):
            for j in range(i + 1, len(owned)):
                assert not (owned[i] & owned[j])


EngineMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestEngineStateful = EngineMachine.TestCase


SRC = "https://src.example.com"
DST = "https://dst.example.com"
UPLOAD = [("up#p0", SECRET_TEXT)]

users = st.sampled_from(["alice", "bob", "carol"])
justifications = st.sampled_from(["legal review", "redacted copy", "audit"])


class SuppressionLookupMachine(RuleBasedStateMachine):
    """Interleaves plain and suppression-consuming lookups.

    The upload is always the same secret text, so the plain decision is
    always the same violation and quickly becomes cache-resident; the
    machine checks that suppressed lookups never touch that cache entry
    and that each one appends exactly one audit event per suppressed
    segment, no matter how the rules interleave.
    """

    def __init__(self):
        super().__init__()
        policies = PolicyStore()
        policies.register_service(
            SRC, privilege=Label.of("s"), confidentiality=Label.of("s")
        )
        policies.register_service(DST)
        self.model = TextDisclosureModel(policies, CONFIG)
        self.model.observe(SRC, "doc-src", [("doc-src#p0", SECRET_TEXT)])
        self.lookup = PolicyLookup(self.model)
        self.noise = 0

    @rule()
    def plain_lookup(self):
        # Never audited, never allowed — a prior suppression must not
        # have stuck to the segment or leaked into the cache.
        before = len(self.model.audit.suppressions())
        decision = self.lookup.lookup(DST, "up", UPLOAD)
        assert not decision.allowed
        assert len(self.model.audit.suppressions()) == before

    @rule(user=users, justification=justifications)
    def suppressed_lookup(self, user, justification):
        # Make sure the violating decision is cache-resident first.
        probe = self.lookup.lookup(DST, "up", UPLOAD)
        targets = probe.violating_segments()
        assert targets
        suppression = Suppression.of("s", user, justification)
        before = len(self.model.audit.suppressions())
        hits = self.lookup.cache.hits
        misses = self.lookup.cache.misses
        decision = self.lookup.lookup(
            DST, "up", UPLOAD,
            suppressions={seg: [suppression] for seg in targets},
        )
        # Consumed: the suppression lifted every violation this once.
        assert decision.allowed
        # Audited exactly once per suppressed segment.
        fresh = self.model.audit.suppressions()[before:]
        assert len(fresh) == len(targets)
        assert sorted(e.segment_id for e in fresh) == sorted(targets)
        assert all(e.user == user for e in fresh)
        assert all(e.justification == justification for e in fresh)
        # The hot decision cache was bypassed entirely: no hit could have
        # served the stale violating decision, and the allowed decision
        # must not be memoised for later plain lookups.
        assert self.lookup.cache.hits == hits
        assert self.lookup.cache.misses == misses

    @rule(text=texts)
    def observe_churn(self, text):
        # Unrelated writes bump the engine version and churn the cache;
        # suppression semantics must not depend on cache temperature.
        self.noise += 1
        doc = f"noise-{self.noise}"
        self.model.observe(SRC, doc, [(f"{doc}#p0", text)])

    @invariant()
    def audit_is_append_only_and_scoped(self):
        for event in self.model.audit.suppressions():
            assert event.tag.name == "s"
            assert event.target_service == DST


SuppressionLookupMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestSuppressionLookupStateful = SuppressionLookupMachine.TestCase
