"""Stateful property testing of the disclosure engine (hypothesis).

A random interleaving of observe / edit / remove / query operations is
checked against a simple reference model on every step:

* an exact copy of a live segment's text is always detected;
* a removed segment is never reported;
* authoritative hash sets stay pairwise disjoint;
* the databases' size counters stay consistent.
"""

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.disclosure import DisclosureEngine
from repro.disclosure.metrics import authoritative_hashes
from repro.fingerprint.config import FingerprintConfig

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)

texts = st.text(
    alphabet=string.ascii_lowercase + " ", min_size=0, max_size=80
)
segment_names = st.sampled_from([f"seg-{i}" for i in range(6)])


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = DisclosureEngine(CONFIG)
        self.live = {}  # segment id -> current text

    @rule(name=segment_names, text=texts)
    def observe(self, name, text):
        self.engine.observe(name, text, threshold=0.5)
        self.live[name] = text

    @rule(name=segment_names)
    def remove(self, name):
        if name in self.live:
            self.engine.remove(name)
            del self.live[name]

    @rule(name=segment_names, probe=texts)
    def query(self, name, probe):
        report = self.engine.disclosing_sources(
            fingerprint=self.engine.fingerprint(probe)
        )
        reported = set(report.source_ids())
        # Dead segments never resurface.
        assert reported <= set(self.live)
        for source in report.sources:
            assert 0.0 < source.score <= 1.0

    @rule(name=segment_names)
    def exact_copy_detected(self, name):
        if name not in self.live:
            return
        text = self.live[name]
        fp = self.engine.fingerprint(text)
        if fp.is_empty():
            return
        report = self.engine.disclosing_sources(fingerprint=fp)
        # The segment itself (or an identical earlier twin that owns the
        # hashes) must be reported.
        reported = set(report.source_ids())
        twins = {n for n, t in self.live.items() if t == text}
        assert reported & twins

    @invariant()
    def segment_count_consistent(self):
        assert len(self.engine.segment_db) == len(self.live)

    @invariant()
    def authoritative_sets_disjoint(self):
        owned = [
            authoritative_hashes(record, self.engine.hash_db)
            for record in self.engine.segment_db
        ]
        for i in range(len(owned)):
            for j in range(i + 1, len(owned)):
                assert not (owned[i] & owned[j])


EngineMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestEngineStateful = EngineMachine.TestCase
