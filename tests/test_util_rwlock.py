"""Tests for the reader–writer lock."""

import threading
import time

import pytest

from repro.util.rwlock import RWLock


class TestBasics:
    def test_read_then_write_sequential(self):
        lock = RWLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            assert lock.held_for_write()
        assert not lock.held_for_write()
        assert lock.read_acquisitions == 1
        assert lock.write_acquisitions == 1

    def test_reentrant_read(self):
        lock = RWLock()
        with lock.read_locked():
            with lock.read_locked():
                pass
        # Fully released: a writer can proceed.
        with lock.write_locked():
            pass

    def test_reentrant_write(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.write_locked():
                assert lock.held_for_write()
        assert not lock.held_for_write()

    def test_read_inside_write(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.read_locked():
                assert lock.held_for_write()
        with lock.write_locked():
            pass

    def test_upgrade_refused(self):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_unbalanced_release_refused(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestExclusion:
    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        ready = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write_locked():
                ready.set()
                release.wait(timeout=5)
                order.append("write-done")

        def reader():
            ready.wait(timeout=5)
            with lock.read_locked():
                order.append("read")

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        ready.wait(timeout=5)
        release.set()
        w.join(timeout=5)
        r.join(timeout=5)
        assert order == ["write-done", "read"]
        assert lock.stats()["read_contended"] == 1

    def test_readers_share(self):
        lock = RWLock()
        barrier = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read_locked():
                # All four readers must be inside simultaneously to pass
                # the barrier; a mutex here would deadlock (and trip the
                # barrier timeout).
                barrier.wait()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert lock.stats()["read_acquisitions"] == 4

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        in_read = threading.Event()
        release_read = threading.Event()
        order = []

        def holder():
            with lock.read_locked():
                in_read.set()
                release_read.wait(timeout=5)

        def writer():
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            # Started once the writer is queued; write preference makes
            # it wait behind the writer despite an active reader.
            with lock.read_locked():
                order.append("late-reader")

        h = threading.Thread(target=holder)
        h.start()
        in_read.wait(timeout=5)
        w = threading.Thread(target=writer)
        w.start()
        # Poll until the writer is queued on the lock.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            with lock._cond:
                if lock._waiting_writers == 1:
                    break
            time.sleep(0.001)
        late = threading.Thread(target=late_reader)
        late.start()
        release_read.set()
        for t in (h, w, late):
            t.join(timeout=5)
        assert order[0] == "writer"


class TestStats:
    def test_stats_keys(self):
        lock = RWLock()
        stats = lock.stats()
        assert set(stats) == {
            "read_acquisitions",
            "write_acquisitions",
            "read_contended",
            "write_contended",
        }

    def test_write_contention_counted(self):
        lock = RWLock()
        in_read = threading.Event()
        release = threading.Event()

        def holder():
            with lock.read_locked():
                in_read.set()
                release.wait(timeout=5)

        h = threading.Thread(target=holder)
        h.start()
        in_read.wait(timeout=5)

        def writer():
            with lock.write_locked():
                pass

        w = threading.Thread(target=writer)
        w.start()
        release.set()
        h.join(timeout=5)
        w.join(timeout=5)
        assert lock.stats()["write_contended"] == 1
