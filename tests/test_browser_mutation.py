"""Tests for mutation observers."""

import pytest

from repro.browser.dom import Document, Element
from repro.browser.mutation import MutationObserver
from repro.errors import BrowserError


@pytest.fixture
def document():
    return Document()


def collecting_observer():
    seen = []

    def callback(records, observer):
        seen.extend(records)

    return MutationObserver(callback), seen


class TestChildListObservation:
    def test_append_notifies(self, document):
        observer, seen = collecting_observer()
        observer.observe(document.body)
        child = document.create_element("div")
        document.body.append_child(child)
        assert len(seen) == 1
        assert seen[0].type == "childList"
        assert seen[0].added_nodes == (child,)

    def test_remove_notifies(self, document):
        child = document.create_element("div")
        document.body.append_child(child)
        observer, seen = collecting_observer()
        observer.observe(document.body)
        document.body.remove_child(child)
        assert seen[0].removed_nodes == (child,)

    def test_subtree_observation(self, document):
        inner = document.create_element("div")
        document.body.append_child(inner)
        observer, seen = collecting_observer()
        observer.observe(document.body, subtree=True)
        inner.append_child(document.create_element("span"))
        assert len(seen) == 1
        assert seen[0].target is inner

    def test_no_subtree_misses_nested(self, document):
        inner = document.create_element("div")
        document.body.append_child(inner)
        observer, seen = collecting_observer()
        observer.observe(document.body, subtree=False)
        inner.append_child(document.create_element("span"))
        assert not seen

    def test_unrelated_subtree_not_observed(self, document):
        a = document.create_element("div")
        b = document.create_element("div")
        document.body.append_child(a)
        document.body.append_child(b)
        observer, seen = collecting_observer()
        observer.observe(a)
        b.append_child(document.create_element("span"))
        assert not seen


class TestCharacterDataObservation:
    def test_text_change_notifies(self, document):
        par = document.create_element("p")
        par.set_text("before")
        document.body.append_child(par)
        observer, seen = collecting_observer()
        observer.observe(document.body)
        par.set_text("after")
        assert len(seen) == 1
        record = seen[0]
        assert record.type == "characterData"
        assert record.old_value == "before"
        assert record.new_value == "after"

    def test_noop_text_change_silent(self, document):
        par = document.create_element("p")
        par.set_text("same")
        document.body.append_child(par)
        observer, seen = collecting_observer()
        observer.observe(document.body)
        par.set_text("same")
        assert not seen

    def test_character_data_disabled(self, document):
        par = document.create_element("p")
        par.set_text("x")
        document.body.append_child(par)
        observer, seen = collecting_observer()
        observer.observe(document.body, character_data=False)
        par.set_text("y")
        assert not seen


class TestAttributeObservation:
    def test_attributes_off_by_default(self, document):
        el = document.create_element("div")
        document.body.append_child(el)
        observer, seen = collecting_observer()
        observer.observe(document.body)
        el.set_attribute("class", "new")
        assert not seen

    def test_attributes_opt_in(self, document):
        el = document.create_element("div")
        document.body.append_child(el)
        observer, seen = collecting_observer()
        observer.observe(document.body, attributes=True)
        el.set_attribute("class", "new")
        assert seen[0].type == "attributes"
        assert seen[0].attribute_name == "class"

    def test_noop_attribute_silent(self, document):
        el = document.create_element("div", {"class": "x"})
        document.body.append_child(el)
        observer, seen = collecting_observer()
        observer.observe(document.body, attributes=True)
        el.set_attribute("class", "x")
        assert not seen


class TestLifecycle:
    def test_disconnect_stops_notifications(self, document):
        observer, seen = collecting_observer()
        observer.observe(document.body)
        observer.disconnect()
        document.body.append_child(document.create_element("div"))
        assert not seen

    def test_take_records_pull_mode(self, document):
        observer = MutationObserver(callback=None)
        observer.observe(document.body)
        document.body.append_child(document.create_element("div"))
        records = observer.take_records()
        assert len(records) == 1
        assert observer.take_records() == []

    def test_observe_detached_node_rejected(self):
        orphan = Element("div")
        observer = MutationObserver(lambda r, o: None)
        with pytest.raises(BrowserError):
            observer.observe(orphan)

    def test_two_observers_both_notified(self, document):
        obs1, seen1 = collecting_observer()
        obs2, seen2 = collecting_observer()
        obs1.observe(document.body)
        obs2.observe(document.body)
        document.body.append_child(document.create_element("div"))
        assert len(seen1) == 1 and len(seen2) == 1

    def test_callback_mutation_does_not_lose_records(self, document):
        """A callback that itself mutates the DOM sees the follow-up
        records on a later delivery rather than dropping them."""
        deliveries = []

        def callback(records, observer):
            deliveries.append(list(records))
            # First delivery triggers one extra mutation.
            if len(deliveries) == 1:
                document.body.append_child(document.create_element("span"))

        observer = MutationObserver(callback)
        observer.observe(document.body)
        document.body.append_child(document.create_element("div"))
        total = sum(len(batch) for batch in deliveries)
        assert total == 2
