"""Tests for engine persistence, encryption at rest, and retention.

The crash tests follow one discipline throughout: a process death is a
:class:`~repro.errors.SimulatedCrash` raised at a deterministic byte
position by a :class:`~repro.util.faults.FaultInjector` schedule — no
subprocesses, no signals, no sleeps. ``drop`` kills the writer before
any bytes land, ``latency`` tears the write after ``int(latency)``
bytes, and ``error`` kills it after the payload is durable but before
the acknowledgement (rename for snapshots, return for WAL appends).
"""

import json
import os
import random

import pytest

from repro.disclosure import DisclosureEngine
from repro.disclosure.persistence import (
    expire_segments,
    load_engine,
    restore_engine,
    save_engine,
    snapshot_engine,
)
from repro.disclosure.wal import DurableEngine
from repro.errors import DisclosureError, SimulatedCrash, SnapshotCorrupt
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.crypto import UploadCipher
from repro.util.clock import LogicalClock
from repro.util.faults import Fault, FaultInjector

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT


@pytest.fixture
def engine():
    engine = DisclosureEngine(TINY_CONFIG, LogicalClock())
    engine.observe("a", SECRET_TEXT, threshold=0.4, doc_id="docA")
    engine.observe("b", OTHER_TEXT)
    engine.observe("c", SECRET_TEXT)  # later copy: 'a' stays authoritative
    return engine


class TestSnapshotRoundtrip:
    def test_segments_restored(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        assert sorted(restored.segment_db.ids()) == ["a", "b", "c"]
        original = engine.segment_db.get("a")
        recovered = restored.segment_db.get("a")
        assert recovered.fingerprint.hashes == original.fingerprint.hashes
        assert recovered.threshold == original.threshold
        assert recovered.doc_id == "docA"

    def test_decisions_identical_after_restore(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        probe = restored.fingerprint(SECRET_TEXT)
        before = engine.disclosing_sources(fingerprint=probe)
        after = restored.disclosing_sources(fingerprint=probe)
        assert before.source_ids() == after.source_ids()
        assert [s.score for s in before.sources] == [s.score for s in after.sources]

    def test_authoritative_ownership_survives(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        record = engine.segment_db.get("a")
        for h in record.fingerprint.hashes:
            assert restored.hash_db.oldest_owner(h) == "a"

    def test_selections_preserved_for_attribution(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        assert (
            restored.segment_db.get("a").fingerprint.selections
            == engine.segment_db.get("a").fingerprint.selections
        )

    def test_config_restored(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        assert load_engine(path).config == TINY_CONFIG

    def test_unsupported_version_rejected(self, engine):
        data = snapshot_engine(engine)
        data["version"] = 99
        with pytest.raises(DisclosureError):
            restore_engine(data)

    def test_snapshot_is_json(self, engine):
        json.dumps(snapshot_engine(engine))  # must not raise


class TestEncryptionAtRest:
    def test_encrypted_snapshot_unreadable(self, engine, tmp_path):
        path = tmp_path / "db.enc"
        cipher = UploadCipher("disk-key")
        save_engine(engine, path, cipher=cipher)
        raw = path.read_text()
        assert "hashes" not in raw
        assert UploadCipher.is_encrypted(raw)

    def test_encrypted_roundtrip(self, engine, tmp_path):
        path = tmp_path / "db.enc"
        cipher = UploadCipher("disk-key")
        save_engine(engine, path, cipher=cipher)
        restored = load_engine(path, cipher=cipher)
        assert sorted(restored.segment_db.ids()) == ["a", "b", "c"]

    def test_encrypted_load_without_cipher_rejected(self, engine, tmp_path):
        path = tmp_path / "db.enc"
        save_engine(engine, path, cipher=UploadCipher("disk-key"))
        with pytest.raises(DisclosureError):
            load_engine(path)


class TestRetention:
    def test_expire_removes_stale_segments(self):
        clock = LogicalClock()
        engine = DisclosureEngine(TINY_CONFIG, clock)
        engine.observe("old", SECRET_TEXT)       # t = 0
        engine.observe("recent", THIRD_TEXT)     # t = 1
        removed = expire_segments(engine, older_than=1.0)
        assert removed == ["old"]
        assert engine.segment_db.ids() == ["recent"]

    def test_expiry_releases_ownership(self):
        clock = LogicalClock()
        engine = DisclosureEngine(TINY_CONFIG, clock)
        engine.observe("old", SECRET_TEXT)
        engine.observe("young", SECRET_TEXT)
        expire_segments(engine, older_than=1.0)
        record = engine.segment_db.get("young")
        for h in record.fingerprint.hashes:
            assert engine.hash_db.oldest_owner(h) == "young"

    def test_expire_nothing(self, engine):
        assert expire_segments(engine, older_than=-1.0) == []
        assert len(engine.segment_db) == 3

    def test_expired_segment_not_reported(self):
        engine = DisclosureEngine(TINY_CONFIG, LogicalClock())
        engine.observe("old", SECRET_TEXT)
        expire_segments(engine, older_than=1.0)
        report = engine.disclosing_sources(
            fingerprint=engine.fingerprint(SECRET_TEXT)
        )
        assert not report.disclosing


class TestAtomicSave:
    """A crash mid-save must never tear the snapshot on disk."""

    CRASHES = [
        pytest.param(Fault.drop(), id="before-write"),
        pytest.param(Fault.slow(0), id="torn-0-bytes"),
        pytest.param(Fault.slow(1), id="torn-1-byte"),
        pytest.param(Fault.slow(200), id="torn-mid-payload"),
        pytest.param(Fault.slow(10**9), id="torn-last-byte"),
        pytest.param(Fault.error(), id="before-rename"),
    ]

    @pytest.mark.parametrize("crash", CRASHES)
    def test_old_snapshot_survives_crashed_writer(self, engine, tmp_path, crash):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        good = path.read_text()
        engine.observe("d", THIRD_TEXT)
        with pytest.raises(SimulatedCrash):
            save_engine(
                engine, path, faults=FaultInjector(schedule=[crash])
            )
        # The destination is byte-identical to the pre-crash snapshot
        # and still loads; only temp-file debris may remain.
        assert path.read_text() == good
        restored = load_engine(path)
        assert sorted(restored.segment_db.ids()) == ["a", "b", "c"]

    @pytest.mark.parametrize("crash", CRASHES)
    def test_crash_on_first_save_leaves_no_snapshot(self, engine, tmp_path, crash):
        path = tmp_path / "db.json"
        with pytest.raises(SimulatedCrash):
            save_engine(
                engine, path, faults=FaultInjector(schedule=[crash])
            )
        assert not path.exists()

    def test_retry_after_crash_succeeds(self, engine, tmp_path):
        path = tmp_path / "db.json"
        faults = FaultInjector(schedule=[Fault.slow(10)])
        with pytest.raises(SimulatedCrash):
            save_engine(engine, path, faults=faults)
        save_engine(engine, path, faults=faults)  # schedule exhausted
        assert sorted(load_engine(path).segment_db.ids()) == ["a", "b", "c"]

    def test_crash_debris_does_not_shadow_snapshot(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        with pytest.raises(SimulatedCrash):
            save_engine(
                engine, path,
                faults=FaultInjector(schedule=[Fault.slow(50)]),
            )
        leftovers = [p for p in tmp_path.iterdir() if p.name != "db.json"]
        for debris in leftovers:  # a real crash leaves the temp file
            assert debris.suffix == ".tmp"
        assert sorted(load_engine(path).segment_db.ids()) == ["a", "b", "c"]


class TestCorruptSnapshots:
    """Damaged snapshots surface as readable errors, not tracebacks."""

    def test_truncated_json(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])
        with pytest.raises(SnapshotCorrupt) as excinfo:
            load_engine(path)
        message = str(excinfo.value)
        assert "db.json" in message
        assert "truncated or corrupt" in message

    def test_empty_file(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("")
        with pytest.raises(SnapshotCorrupt):
            load_engine(path)

    def test_wrong_cipher_key(self, engine, tmp_path):
        path = tmp_path / "db.enc"
        save_engine(engine, path, cipher=UploadCipher("right-key"))
        with pytest.raises(SnapshotCorrupt) as excinfo:
            load_engine(path, cipher=UploadCipher("wrong-key"))
        assert "wrong key or corrupt ciphertext" in str(excinfo.value)

    def test_missing_fields(self, engine, tmp_path):
        data = snapshot_engine(engine)
        del data["segments"]
        path = tmp_path / "db.json"
        path.write_text(json.dumps(data))
        with pytest.raises(SnapshotCorrupt):
            load_engine(path)

    def test_non_object_root(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SnapshotCorrupt):
            load_engine(path)

    def test_missing_file_is_plain_disclosure_error(self, tmp_path):
        with pytest.raises(DisclosureError):
            load_engine(tmp_path / "absent.json")

    def test_corrupt_is_a_disclosure_error(self):
        # CLI and callers catch DisclosureError; corruption must be one.
        assert issubclass(SnapshotCorrupt, DisclosureError)


# ----------------------------------------------------------------------
# Crash-recovery matrix: kill the durable engine at every WAL append,
# at record boundaries and mid-record, then prove the recovered state
# is field-identical to a reference engine that applied exactly the
# acknowledged prefix of operations.
# ----------------------------------------------------------------------

#: One op per WAL append, so "crash at append i" is "crash at op i".
#: (expire is absent on purpose: its audit marker is a second append.)
SCRIPT = [
    ("observe", "a", SECRET_TEXT, 0.4, "docA"),
    ("observe", "b", OTHER_TEXT, 0.5, None),
    ("threshold", "a", 0.25),
    ("observe", "c", SECRET_TEXT, 0.5, "docC"),
    ("remove", "b"),
    ("observe", "b", THIRD_TEXT, 0.6, "docB"),
    ("observe", "a", SECRET_TEXT, 0.3, "docA"),
    ("remove", "c"),
]


def apply_op(engine, op):
    if op[0] == "observe":
        _, segment_id, text, threshold, doc_id = op
        engine.observe(segment_id, text, threshold=threshold, doc_id=doc_id)
    elif op[0] == "remove":
        engine.remove(op[1])
    elif op[0] == "threshold":
        engine.set_threshold(op[1], op[2])
    else:  # pragma: no cover - script bug
        raise AssertionError(f"unknown op {op!r}")


def reference_engine(ops):
    """A never-crashed plain engine that applied exactly *ops*."""
    engine = DisclosureEngine(TINY_CONFIG, LogicalClock())
    for op in ops:
        apply_op(engine, op)
    return engine


def assert_field_identical(recovered, reference):
    """Segments, observations, owner epochs, and clock all match."""
    assert sorted(recovered.segment_db.ids()) == sorted(
        reference.segment_db.ids()
    )
    for segment_id in reference.segment_db.ids():
        ours = recovered.segment_db.get(segment_id)
        theirs = reference.segment_db.get(segment_id)
        assert ours.fingerprint.hashes == theirs.fingerprint.hashes
        assert ours.fingerprint.selections == theirs.fingerprint.selections
        assert ours.threshold == theirs.threshold
        assert ours.kind == theirs.kind
        assert ours.doc_id == theirs.doc_id
        assert ours.last_updated == theirs.last_updated
        assert recovered.hash_db.owned_hashes(segment_id) == (
            reference.hash_db.owned_hashes(segment_id)
        )
        assert recovered.hash_db.owner_epoch(segment_id) == (
            reference.hash_db.owner_epoch(segment_id)
        )
    assert sorted(recovered.hash_db.hashes()) == sorted(
        reference.hash_db.hashes()
    )
    for hash_value in reference.hash_db.hashes():
        assert sorted(recovered.hash_db.owners(hash_value)) == sorted(
            reference.hash_db.owners(hash_value)
        )
        assert recovered.hash_db.oldest_owner(hash_value) == (
            reference.hash_db.oldest_owner(hash_value)
        )
    assert recovered.hash_db.ownership_changes == (
        reference.hash_db.ownership_changes
    )
    recovered.hash_db.check_invariants()
    reference.hash_db.check_invariants()
    # Destructive read, so always last: both clocks hand out the same
    # next timestamp — the recovered engine resumed, not rewound.
    assert recovered.engine._clock.now() == reference._clock.now()


def crash_then_recover(directory, script, crash_index, fault, **kwargs):
    """Kill a durable engine at append *crash_index* (1-based), recover.

    Returns ``(recovered_engine, acknowledged_prefix)`` where the
    prefix is the script slice a correct recovery must reproduce:
    ``drop``/``latency`` lose the in-flight record (prefix excludes op
    *crash_index*), ``error`` crashes after it is durable (prefix
    includes it).
    """
    schedule = [Fault.none()] * (crash_index - 1) + [fault]
    primary = DurableEngine(
        directory, config=TINY_CONFIG,
        faults=FaultInjector(schedule=schedule), **kwargs,
    )
    with pytest.raises(SimulatedCrash):
        for op in script:
            apply_op(primary, op)
    # No close(): the process is dead. Recovery opens the same files.
    acknowledged = crash_index if fault.kind == "error" else crash_index - 1
    recovered = DurableEngine(directory, config=TINY_CONFIG, **kwargs)
    return recovered, script[:acknowledged]


CRASH_KINDS = [
    pytest.param(Fault.drop(), id="boundary-drop"),
    pytest.param(Fault.error(), id="durable-unacked"),
    pytest.param(Fault.slow(0), id="torn-0"),
    pytest.param(Fault.slow(1), id="torn-header"),
    pytest.param(Fault.slow(9), id="torn-checksum"),
    pytest.param(Fault.slow(40), id="torn-payload"),
    pytest.param(Fault.slow(10**9), id="torn-last-byte"),
]


class TestCrashRecoveryMatrix:
    @pytest.mark.parametrize("crash_index", range(1, len(SCRIPT) + 1))
    @pytest.mark.parametrize("fault", CRASH_KINDS)
    def test_recovery_matches_acknowledged_prefix(
        self, tmp_path, crash_index, fault
    ):
        recovered, prefix = crash_then_recover(
            tmp_path, SCRIPT, crash_index, fault
        )
        try:
            assert_field_identical(recovered, reference_engine(prefix))
        finally:
            recovered.close()

    @pytest.mark.parametrize("crash_index", range(1, len(SCRIPT) + 1))
    @pytest.mark.parametrize(
        "fault",
        [
            pytest.param(Fault.drop(), id="boundary-drop"),
            pytest.param(Fault.error(), id="durable-unacked"),
            pytest.param(Fault.slow(9), id="torn-checksum"),
        ],
    )
    def test_recovery_with_compaction_in_flight(
        self, tmp_path, crash_index, fault
    ):
        """Same matrix with auto-compaction folding the log mid-script:
        crashes land before, between, and after snapshot rotations."""
        recovered, prefix = crash_then_recover(
            tmp_path, SCRIPT, crash_index, fault, compact_every=3
        )
        try:
            assert_field_identical(recovered, reference_engine(prefix))
        finally:
            recovered.close()

    @pytest.mark.parametrize("crash_index", [1, 4, 8])
    def test_second_recovery_is_idempotent(self, tmp_path, crash_index):
        first, prefix = crash_then_recover(
            tmp_path, SCRIPT, crash_index, Fault.slow(9)
        )
        first.close()
        second = DurableEngine(tmp_path, config=TINY_CONFIG)
        try:
            assert_field_identical(second, reference_engine(prefix))
            assert second.recovery.torn_bytes == 0  # first pass truncated
        finally:
            second.close()

    def test_recovered_engine_keeps_working(self, tmp_path):
        recovered, prefix = crash_then_recover(
            tmp_path, SCRIPT, 5, Fault.drop()
        )
        try:
            recovered.observe("post", THIRD_TEXT, threshold=0.5)
            report = recovered.disclosing_sources(
                fingerprint=recovered.fingerprint(SECRET_TEXT)
            )
            assert "a" in report.source_ids()
        finally:
            recovered.close()

    def test_encrypted_wal_recovers(self, tmp_path):
        cipher = UploadCipher("log-key")
        recovered, prefix = crash_then_recover(
            tmp_path, SCRIPT, 6, Fault.slow(40), cipher=cipher
        )
        try:
            assert_field_identical(recovered, reference_engine(prefix))
        finally:
            recovered.close()
        raw = (tmp_path / "wal.log").read_bytes()
        assert SECRET_TEXT.split()[0].encode() not in raw

    def test_sharded_tier_recovers(self, tmp_path):
        recovered, prefix = crash_then_recover(
            tmp_path, SCRIPT, 7, Fault.slow(40), n_shards=4
        )
        try:
            assert_field_identical(recovered, reference_engine(prefix))
        finally:
            recovered.close()


def _durability_seeds():
    return os.environ.get("BF_DURABILITY_SEEDS", "dur-1,dur-2").split(",")


@pytest.mark.parametrize("seed", _durability_seeds())
def test_randomized_crash_recovery(tmp_path, seed):
    """Fuzzed scripts and crash points, reproducible per seed; widen
    coverage in CI via BF_DURABILITY_SEEDS=seed1,seed2,..."""
    rng = random.Random(seed)
    texts = [SECRET_TEXT, OTHER_TEXT, THIRD_TEXT]
    for case in range(4):
        script = []
        live = []
        for _ in range(rng.randint(3, 12)):
            roll = rng.random()
            if live and roll < 0.15:
                victim = rng.choice(live)
                live.remove(victim)
                script.append(("remove", victim))
            elif live and roll < 0.3:
                script.append(
                    ("threshold", rng.choice(live), rng.uniform(0.1, 0.9))
                )
            else:
                segment_id = f"s{rng.randint(0, 4)}"
                if segment_id not in live:
                    live.append(segment_id)
                script.append(
                    (
                        "observe", segment_id, rng.choice(texts),
                        rng.uniform(0.2, 0.8),
                        rng.choice([None, "docX", "docY"]),
                    )
                )
        crash_index = rng.randint(1, len(script))
        fault = rng.choice(
            [Fault.drop(), Fault.error(), Fault.slow(rng.randint(0, 64))]
        )
        compact_every = rng.choice([None, 2, 3])
        directory = tmp_path / f"case{case}"
        recovered, prefix = crash_then_recover(
            directory, script, crash_index, fault,
            compact_every=compact_every,
        )
        try:
            assert_field_identical(recovered, reference_engine(prefix))
        finally:
            recovered.close()


class TestClockResume:
    def test_restored_clock_resumes_past_snapshot(self, engine, tmp_path):
        """A restarted process must not hand out timestamps at or before
        the snapshot's, or new observations would steal authoritative
        ownership from the true first observers."""
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        # "aaa-newcomer" sorts before "a", so with a rewound clock the
        # (timestamp, id) tie-break would hand it ownership.
        restored.observe("aaa-newcomer", SECRET_TEXT)
        for h in restored.segment_db.get("a").fingerprint.hashes:
            assert restored.hash_db.oldest_owner(h) == "a"

    def test_explicit_clock_still_respected(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path, clock=LogicalClock(start=100))
        restored.observe("later", THIRD_TEXT)
        assert restored.segment_db.get("later").last_updated == 100.0
