"""Tests for engine persistence, encryption at rest, and retention."""

import json

import pytest

from repro.disclosure import DisclosureEngine
from repro.disclosure.persistence import (
    expire_segments,
    load_engine,
    restore_engine,
    save_engine,
    snapshot_engine,
)
from repro.errors import DisclosureError
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.crypto import UploadCipher
from repro.util.clock import LogicalClock

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT


@pytest.fixture
def engine():
    engine = DisclosureEngine(TINY_CONFIG, LogicalClock())
    engine.observe("a", SECRET_TEXT, threshold=0.4, doc_id="docA")
    engine.observe("b", OTHER_TEXT)
    engine.observe("c", SECRET_TEXT)  # later copy: 'a' stays authoritative
    return engine


class TestSnapshotRoundtrip:
    def test_segments_restored(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        assert sorted(restored.segment_db.ids()) == ["a", "b", "c"]
        original = engine.segment_db.get("a")
        recovered = restored.segment_db.get("a")
        assert recovered.fingerprint.hashes == original.fingerprint.hashes
        assert recovered.threshold == original.threshold
        assert recovered.doc_id == "docA"

    def test_decisions_identical_after_restore(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        probe = restored.fingerprint(SECRET_TEXT)
        before = engine.disclosing_sources(fingerprint=probe)
        after = restored.disclosing_sources(fingerprint=probe)
        assert before.source_ids() == after.source_ids()
        assert [s.score for s in before.sources] == [s.score for s in after.sources]

    def test_authoritative_ownership_survives(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        record = engine.segment_db.get("a")
        for h in record.fingerprint.hashes:
            assert restored.hash_db.oldest_owner(h) == "a"

    def test_selections_preserved_for_attribution(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        assert (
            restored.segment_db.get("a").fingerprint.selections
            == engine.segment_db.get("a").fingerprint.selections
        )

    def test_config_restored(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        assert load_engine(path).config == TINY_CONFIG

    def test_unsupported_version_rejected(self, engine):
        data = snapshot_engine(engine)
        data["version"] = 99
        with pytest.raises(DisclosureError):
            restore_engine(data)

    def test_snapshot_is_json(self, engine):
        json.dumps(snapshot_engine(engine))  # must not raise


class TestEncryptionAtRest:
    def test_encrypted_snapshot_unreadable(self, engine, tmp_path):
        path = tmp_path / "db.enc"
        cipher = UploadCipher("disk-key")
        save_engine(engine, path, cipher=cipher)
        raw = path.read_text()
        assert "hashes" not in raw
        assert UploadCipher.is_encrypted(raw)

    def test_encrypted_roundtrip(self, engine, tmp_path):
        path = tmp_path / "db.enc"
        cipher = UploadCipher("disk-key")
        save_engine(engine, path, cipher=cipher)
        restored = load_engine(path, cipher=cipher)
        assert sorted(restored.segment_db.ids()) == ["a", "b", "c"]

    def test_encrypted_load_without_cipher_rejected(self, engine, tmp_path):
        path = tmp_path / "db.enc"
        save_engine(engine, path, cipher=UploadCipher("disk-key"))
        with pytest.raises(DisclosureError):
            load_engine(path)


class TestRetention:
    def test_expire_removes_stale_segments(self):
        clock = LogicalClock()
        engine = DisclosureEngine(TINY_CONFIG, clock)
        engine.observe("old", SECRET_TEXT)       # t = 0
        engine.observe("recent", THIRD_TEXT)     # t = 1
        removed = expire_segments(engine, older_than=1.0)
        assert removed == ["old"]
        assert engine.segment_db.ids() == ["recent"]

    def test_expiry_releases_ownership(self):
        clock = LogicalClock()
        engine = DisclosureEngine(TINY_CONFIG, clock)
        engine.observe("old", SECRET_TEXT)
        engine.observe("young", SECRET_TEXT)
        expire_segments(engine, older_than=1.0)
        record = engine.segment_db.get("young")
        for h in record.fingerprint.hashes:
            assert engine.hash_db.oldest_owner(h) == "young"

    def test_expire_nothing(self, engine):
        assert expire_segments(engine, older_than=-1.0) == []
        assert len(engine.segment_db) == 3

    def test_expired_segment_not_reported(self):
        engine = DisclosureEngine(TINY_CONFIG, LogicalClock())
        engine.observe("old", SECRET_TEXT)
        expire_segments(engine, older_than=1.0)
        report = engine.disclosing_sources(
            fingerprint=engine.fingerprint(SECRET_TEXT)
        )
        assert not report.disclosing


class TestClockResume:
    def test_restored_clock_resumes_past_snapshot(self, engine, tmp_path):
        """A restarted process must not hand out timestamps at or before
        the snapshot's, or new observations would steal authoritative
        ownership from the true first observers."""
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path)
        # "aaa-newcomer" sorts before "a", so with a rewound clock the
        # (timestamp, id) tie-break would hand it ownership.
        restored.observe("aaa-newcomer", SECRET_TEXT)
        for h in restored.segment_db.get("a").fingerprint.hashes:
            assert restored.hash_db.oldest_owner(h) == "a"

    def test_explicit_clock_still_respected(self, engine, tmp_path):
        path = tmp_path / "db.json"
        save_engine(engine, path)
        restored = load_engine(path, clock=LogicalClock(start=100))
        restored.observe("later", THIRD_TEXT)
        assert restored.segment_db.get("later").last_updated == 100.0
