"""Tests for the per-figure experiment runners.

These run the experiments at reduced scale and assert the paper's
*shape* claims rather than absolute values.
"""

import pytest

from repro.datasets import EbookCorpus, ManualsCorpus, WikipediaCorpus
from repro.eval import (
    figure8_length_change_cdf,
    figure9_paragraph_disclosure,
    figure10_manuals_disclosure,
    figure11_threshold_sweep,
    figure12_response_times,
    figure13_scalability,
    table1_dataset_stats,
)
from repro.fingerprint.config import TINY_CONFIG


@pytest.fixture(scope="module")
def wikipedia():
    return WikipediaCorpus.generate(n_revisions=40, seed=42)


@pytest.fixture(scope="module")
def manuals():
    return ManualsCorpus.generate(seed=42, scale=0.5)


@pytest.fixture(scope="module")
def ebooks():
    return EbookCorpus.generate(n_books=4, paragraphs_per_book=20, seed=42)


class TestTable1:
    def test_row_per_dataset(self, wikipedia, manuals, ebooks):
        rows = table1_dataset_stats(wikipedia, manuals, ebooks)
        assert len(rows) == 6  # Wikipedia + 4 chapters + Ebooks
        datasets = {row["dataset"] for row in rows}
        assert datasets == {"Wikipedia", "Manuals", "Ebooks"}

    def test_fields_present(self, wikipedia, manuals, ebooks):
        for row in table1_dataset_stats(wikipedia, manuals, ebooks):
            assert {"dataset", "name", "documents", "versions", "paragraphs", "size_kb"} <= set(row)
            assert row["size_kb"] > 0


class TestFigure8:
    def test_cdf_monotone(self, wikipedia):
        points = figure8_length_change_cdf(wikipedia)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_volatile_in_tail(self, wikipedia):
        """Stable articles cluster at small changes; volatile dominate
        the upper tail of the distribution."""
        stable = max(a.relative_length_change() for a in wikipedia.stable_articles())
        volatile = max(a.relative_length_change() for a in wikipedia.volatile_articles())
        assert volatile > stable


class TestFigure9:
    def test_stable_articles_stay_disclosed(self, wikipedia):
        results = figure9_paragraph_disclosure(
            wikipedia, config=TINY_CONFIG, revision_step=7,
            titles=["Chicago", "IP address"],
        )
        for series in results.values():
            # Stable articles keep the bulk of their base paragraphs.
            assert series[-1][1] >= 60.0

    def test_volatile_articles_decay(self, wikipedia):
        results = figure9_paragraph_disclosure(
            wikipedia, config=TINY_CONFIG, revision_step=7,
            titles=["Dementia", "Dow Jones"],
        )
        for series in results.values():
            first = series[0][1]
            last = series[-1][1]
            assert last < first

    def test_title_filter(self, wikipedia):
        results = figure9_paragraph_disclosure(
            wikipedia, config=TINY_CONFIG, titles=["Chicago"], revision_step=7
        )
        assert list(results) == ["Chicago"]

    def test_percentages_in_range(self, wikipedia):
        results = figure9_paragraph_disclosure(
            wikipedia, config=TINY_CONFIG, revision_step=7, titles=["C++"]
        )
        for series in results.values():
            assert all(0.0 <= pct <= 100.0 for _idx, pct in series)


class TestFigure10:
    def test_browserflow_tracks_ground_truth(self, manuals):
        results = figure10_manuals_disclosure(manuals, config=TINY_CONFIG)
        for points in results.values():
            for point in points:
                # BrowserFlow never exceeds truth by much and tracks it
                # within a reasonable band (paper: close agreement).
                assert point.browserflow_pct <= point.ground_truth_pct + 15.0
                assert point.browserflow_pct >= point.ground_truth_pct - 30.0

    def test_whats_mysql_stays_full(self, manuals):
        results = figure10_manuals_disclosure(manuals, config=TINY_CONFIG)
        for point in results["mysql-whats-mysql"]:
            assert point.browserflow_pct >= 80.0

    def test_iphone_chapters_decay(self, manuals):
        results = figure10_manuals_disclosure(manuals, config=TINY_CONFIG)
        for chapter_id in ("iphone-camera", "iphone-message"):
            series = results[chapter_id]
            assert series[-1].browserflow_pct < series[0].browserflow_pct

    def test_false_negatives_are_rephrased(self, manuals):
        """BrowserFlow's misses are concentrated on rephrased
        paragraphs — the paper's systematic false-negative class."""
        results = figure10_manuals_disclosure(manuals, config=TINY_CONFIG)
        chapter = manuals.by_id("iphone-camera")
        for point in results["iphone-camera"]:
            version = chapter.version(point.version)
            for idx in point.false_negatives:
                assert version.fates[idx] == "rephrased"


class TestFigure11:
    def test_ratio_band(self, manuals):
        sweep = figure11_threshold_sweep(
            manuals, config=TINY_CONFIG, thresholds=(0.2, 0.5, 0.8)
        )
        for _threshold, ratio in sweep:
            assert 0.7 <= ratio <= 1.1

    def test_high_threshold_underreports(self, manuals):
        sweep = dict(
            figure11_threshold_sweep(
                manuals, config=TINY_CONFIG, thresholds=(0.5, 1.0)
            )
        )
        assert sweep[1.0] <= sweep[0.5]


class TestFigure12:
    def test_workflows_present(self, ebooks):
        results = figure12_response_times(ebooks, config=TINY_CONFIG)
        assert set(results) == {
            "creation-with-overlap",
            "creation-without-overlap",
            "modification",
        }

    def test_latencies_positive(self, ebooks):
        results = figure12_response_times(ebooks, config=TINY_CONFIG)
        for times in results.values():
            assert times
            assert all(t >= 0 for t in times)

    def test_overlap_slower_than_no_overlap(self, ebooks):
        """W1/W3 touch overlapping text and must not be faster than W2
        on average (paper: overlap requires inspecting more hashes)."""
        results = figure12_response_times(ebooks, config=TINY_CONFIG)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(results["modification"]) >= mean(
            results["creation-without-overlap"]
        ) * 0.8


class TestFigure13:
    def test_hash_counts_grow(self, ebooks):
        series = figure13_scalability(
            ebooks, config=TINY_CONFIG, steps=3, samples_per_step=3
        )
        hashes = [n for n, _ms in series]
        assert hashes == sorted(hashes)
        assert hashes[-1] > hashes[0]

    def test_response_does_not_blow_up(self, ebooks):
        """Response time must not grow superlinearly with the database.

        At this tiny test scale timing noise dominates, so the bound is
        generous; the real sublinearity claim is exercised at benchmark
        scale in benchmarks/bench_fig13_scalability.py.
        """
        series = figure13_scalability(
            ebooks, config=TINY_CONFIG, steps=3, samples_per_step=5
        )
        (n0, t0), (n1, t1) = series[0], series[-1]
        growth = n1 / n0
        assert t1 <= max(t0, 1.0) * growth * 3


class TestFigure9DocumentGranularity:
    def test_results_similar_to_paragraph_granularity(self, wikipedia):
        """§6.1: 'the results for the document granularity are
        similar' — stable articles stay high, volatile ones decay."""
        from repro.eval.experiments import figure9_document_disclosure

        results = figure9_document_disclosure(
            wikipedia, config=TINY_CONFIG, revision_step=13,
        )
        for title, series in results.items():
            article = wikipedia.by_title(title)
            if article.volatility == "stable":
                assert series[-1][1] >= 60.0, (title, series[-1])
            else:
                # Whole-document containment decays more slowly than
                # per-paragraph detection (unchanged paragraphs keep
                # contributing), but the decline is unmistakable.
                assert series[-1][1] < series[0][1], title
                assert series[-1][1] <= 70.0, (title, series[-1])

    def test_scores_percentages(self, wikipedia):
        from repro.eval.experiments import figure9_document_disclosure

        results = figure9_document_disclosure(
            wikipedia, config=TINY_CONFIG, revision_step=13,
            titles=["Chicago"],
        )
        for series in results.values():
            assert all(0.0 <= pct <= 100.0 for _i, pct in series)
