"""Tests for the plain-text chart renderers."""

from repro.eval.charts import bar_chart, series_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_levels(self):
        line = sparkline([0, 50, 100])
        assert len(line) == 3
        assert line[0] < line[1] < line[2]

    def test_constant_values_full_blocks(self):
        assert set(sparkline([5, 5, 5])) == {"█"}

    def test_explicit_bounds(self):
        # With a fixed scale, 50 of 100 renders mid-height.
        line = sparkline([50], lo=0, hi=100)
        assert line in "▃▄▅"


class TestBarChart:
    def test_rows_rendered(self):
        chart = bar_chart([("alpha", 10.0), ("beta", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("alpha")
        assert lines[1].startswith("beta ")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title(self):
        assert bar_chart([("x", 1.0)], title="T").startswith("T")

    def test_values_printed(self):
        chart = bar_chart([("x", 42.5)], unit="%")
        assert "42.5%" in chart

    def test_empty_rows(self):
        assert bar_chart([], title="T") == "T"

    def test_max_value_caps_bars(self):
        chart = bar_chart([("x", 200.0)], width=10, max_value=100.0)
        assert chart.count("#") == 10


class TestSeriesPlot:
    def test_contains_glyphs_and_legend(self):
        plot = series_plot(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            width=20, height=5,
        )
        assert "o = up" in plot
        assert "x = down" in plot
        assert "o" in plot.splitlines()[0] or "o" in plot

    def test_axis_labels(self):
        plot = series_plot({"s": [(0, 0), (10, 100)]}, width=20, height=5)
        assert "100" in plot
        assert "10" in plot

    def test_empty(self):
        assert series_plot({}, title="T") == "T"

    def test_single_point(self):
        plot = series_plot({"s": [(5, 5)]}, width=10, height=3)
        assert "o" in plot
