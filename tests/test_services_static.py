"""Tests for the static article site."""

import pytest

from repro.browser import Browser
from repro.browser.http import HttpRequest
from repro.browser.readability import extract_main_text
from repro.errors import DocumentNotFound
from repro.services import Network, StaticSite

ARTICLE = [
    "The committee announced its findings, noting several concerns, today.",
    "Observers responded with questions, comments, and further analysis.",
]


@pytest.fixture
def setup():
    network = Network()
    site = StaticSite()
    site.publish("report", ARTICLE)
    network.register(site)
    return Browser(network), site


class TestPublishing:
    def test_article_retrievable(self, setup):
        _browser, site = setup
        assert site.article("report") == ARTICLE

    def test_unknown_article_raises(self, setup):
        _browser, site = setup
        with pytest.raises(DocumentNotFound):
            site.article("ghost")


class TestRendering:
    def test_article_with_boilerplate(self, setup):
        browser, site = setup
        tab = browser.open(site.article_url("report"))
        text = tab.document.text_content()
        assert ARTICLE[0] in text
        assert "Related story" in text  # sidebar boilerplate present

    def test_readability_extracts_only_article(self, setup):
        browser, site = setup
        tab = browser.open(site.article_url("report"))
        main = extract_main_text(tab.document)
        assert ARTICLE[0] in main
        assert ARTICLE[1] in main
        assert "Related story" not in main
        assert "Copyright" not in main

    def test_extraction_preserves_paragraphs(self, setup):
        browser, site = setup
        tab = browser.open(site.article_url("report"))
        assert extract_main_text(tab.document).split("\n\n") == ARTICLE


class TestReadOnly:
    def test_uploads_rejected(self, setup):
        _browser, site = setup
        response = site.handle_request(HttpRequest("POST", site.url("/anything")))
        assert response.status == 405
