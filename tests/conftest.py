"""Shared fixtures for the BrowserFlow reproduction test suite."""

from __future__ import annotations

import pytest

from repro import (
    Browser,
    BrowserFlowPlugin,
    DisclosureEngine,
    DocsService,
    Fingerprinter,
    InterviewTool,
    Label,
    Network,
    PolicyStore,
    TextDisclosureModel,
    UploadCipher,
    WikiService,
)
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin import PluginMode
from repro.util.clock import LogicalClock

# Long, distinct prose samples. Each is comfortably above the winnowing
# guarantee threshold for both TINY_CONFIG and the paper config.
SECRET_TEXT = (
    "Our interview guidelines say to always probe for distributed systems "
    "depth and to ask about consensus protocols in the second round of "
    "every onsite interview loop."
)
OTHER_TEXT = (
    "The quarterly marketing newsletter celebrates the community garden "
    "initiative and invites volunteers to the harvest festival next month "
    "in the main courtyard."
)
THIRD_TEXT = (
    "Database replication lag is monitored through a dedicated dashboard "
    "that aggregates binlog positions from every replica and raises alerts "
    "when any replica falls behind."
)


@pytest.fixture
def tiny_config():
    return TINY_CONFIG


@pytest.fixture
def fingerprinter(tiny_config):
    return Fingerprinter(tiny_config)


@pytest.fixture
def engine(tiny_config):
    return DisclosureEngine(tiny_config, LogicalClock())


class EnterpriseFixture:
    """The paper's §2 scenario wired end to end.

    Interview Tool (ti) and internal Wiki (tw) are trusted internal
    services; the Docs service is an untrusted external one. A plug-in
    in ENFORCE mode is attached to the browser.
    """

    def __init__(self, mode: PluginMode = PluginMode.ENFORCE) -> None:
        self.network = Network()
        self.wiki = WikiService()
        self.itool = InterviewTool()
        self.docs = DocsService()
        for service in (self.wiki, self.itool, self.docs):
            self.network.register(service)

        self.policies = PolicyStore()
        self.policies.register_service(
            self.wiki.origin,
            privilege=Label.of("tw"),
            confidentiality=Label.of("tw"),
            display_name="Internal Wiki",
        )
        self.policies.register_service(
            self.itool.origin,
            privilege=Label.of("ti"),
            confidentiality=Label.of("ti"),
            display_name="Interview Tool",
        )
        self.policies.register_service(self.docs.origin, display_name="Docs")

        self.model = TextDisclosureModel(self.policies, TINY_CONFIG)
        self.browser = Browser(self.network)
        cipher = (
            UploadCipher("enterprise-master-key")
            if mode is PluginMode.ENCRYPT
            else None
        )
        self.plugin = BrowserFlowPlugin(self.model, mode=mode, cipher=cipher)
        self.plugin.attach(self.browser)


@pytest.fixture
def enterprise():
    return EnterpriseFixture()


@pytest.fixture
def enterprise_advisory():
    return EnterpriseFixture(mode=PluginMode.ADVISORY)
