"""Tests for the policy enforcement module."""

import pytest

from repro.plugin.crypto import UploadCipher
from repro.plugin.enforcement import PluginMode, PolicyEnforcement
from repro.tdm.labels import Label, SegmentLabel
from repro.tdm.model import FlowDecision, FlowViolation


def allowed_decision():
    return FlowDecision(service_id="svc", allowed=True)


def violating_decision():
    violation = FlowViolation(
        segment_id="seg-1",
        label=SegmentLabel.of(explicit=["ti"]),
        offending=Label.of("ti"),
    )
    return FlowDecision(service_id="svc", allowed=False, violations=(violation,))


class TestEnforceMode:
    def test_allowed_proceeds(self):
        enforcement = PolicyEnforcement(PluginMode.ENFORCE)
        action = enforcement.enforce(allowed_decision(), {})
        assert action.proceed
        assert not action.violated

    def test_violation_blocked(self):
        enforcement = PolicyEnforcement(PluginMode.ENFORCE)
        action = enforcement.enforce(violating_decision(), {"seg-1": "text"})
        assert not action.proceed
        assert action.violated
        assert action.rewrites == {}


class TestAdvisoryMode:
    def test_violation_proceeds_with_flag(self):
        enforcement = PolicyEnforcement(PluginMode.ADVISORY)
        action = enforcement.enforce(violating_decision(), {"seg-1": "text"})
        assert action.proceed
        assert action.violated


class TestEncryptMode:
    def test_violating_segment_rewritten(self):
        cipher = UploadCipher("k")
        enforcement = PolicyEnforcement(PluginMode.ENCRYPT, cipher)
        action = enforcement.enforce(violating_decision(), {"seg-1": "secret text"})
        assert action.proceed
        assert "seg-1" in action.rewrites
        assert cipher.decrypt(action.rewrites["seg-1"]) == "secret text"

    def test_clean_segments_untouched(self):
        enforcement = PolicyEnforcement(PluginMode.ENCRYPT, UploadCipher("k"))
        action = enforcement.enforce(allowed_decision(), {"seg-1": "text"})
        assert action.rewrites == {}

    def test_encrypt_without_cipher_rejected(self):
        enforcement = PolicyEnforcement(PluginMode.ENCRYPT)
        with pytest.raises(ValueError):
            enforcement.enforce(violating_decision(), {"seg-1": "x"})

    def test_missing_text_skipped(self):
        enforcement = PolicyEnforcement(PluginMode.ENCRYPT, UploadCipher("k"))
        action = enforcement.enforce(violating_decision(), {})
        assert action.proceed
        assert action.rewrites == {}


class TestModeSwitch:
    def test_mode_mutable(self):
        enforcement = PolicyEnforcement(PluginMode.ENFORCE)
        enforcement.mode = PluginMode.ADVISORY
        assert enforcement.enforce(violating_decision(), {}).proceed
