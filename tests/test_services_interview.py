"""Tests for the Interview Tool service."""

import pytest

from repro.browser import Browser
from repro.browser.http import HttpRequest
from repro.services import InterviewTool, Network


@pytest.fixture
def setup():
    network = Network()
    itool = InterviewTool()
    network.register(itool)
    return Browser(network), itool


class TestNotes:
    def test_submit_note(self, setup):
        browser, itool = setup
        ok = itool.submit_note(
            browser.new_tab(), "jane-doe", "Strong systems design answers."
        )
        assert ok
        assert itool.notes_for("jane-doe") == ["Strong systems design answers."]

    def test_notes_accumulate(self, setup):
        browser, itool = setup
        tab = browser.new_tab()
        itool.submit_note(tab, "jane-doe", "Round one note.")
        itool.submit_note(tab, "jane-doe", "Round two note.")
        assert len(itool.notes_for("jane-doe")) == 2

    def test_notes_per_candidate(self, setup):
        browser, itool = setup
        tab = browser.new_tab()
        itool.submit_note(tab, "a", "note about a")
        itool.submit_note(tab, "b", "note about b")
        assert itool.notes_for("a") == ["note about a"]
        assert itool.notes_for("b") == ["note about b"]

    def test_unknown_candidate_empty(self, setup):
        _browser, itool = setup
        assert itool.notes_for("nobody") == []


class TestRendering:
    def test_existing_notes_rendered(self, setup):
        browser, itool = setup
        itool.add_note("jane-doe", "Pre-existing evaluation note.")
        tab = browser.open(itool.candidate_url("jane-doe"))
        assert "Pre-existing evaluation note." in tab.document.text_content()

    def test_note_form_present(self, setup):
        browser, itool = setup
        tab = browser.open(itool.candidate_url("jane-doe"))
        assert tab.document.get_element_by_id("note-form") is not None


class TestBackendProtocol:
    def test_missing_candidate_rejected(self, setup):
        _browser, itool = setup
        response = itool.handle_request(
            HttpRequest("POST", itool.url("/evaluate"), form_data={"note": "x"})
        )
        assert response.status == 400

    def test_unknown_path_404(self, setup):
        _browser, itool = setup
        assert itool.handle_request(HttpRequest("GET", itool.url("/x"))).status == 404
