"""Tests for the e-book corpus."""

import pytest

from repro.datasets.ebooks import EbookCorpus
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def corpus():
    return EbookCorpus.generate(n_books=4, paragraphs_per_book=30, seed=5)


class TestGeneration:
    def test_book_count(self, corpus):
        assert len(corpus) == 4

    def test_paragraph_count(self, corpus):
        assert all(len(b.paragraphs) == 30 for b in corpus)

    def test_deterministic(self):
        a = EbookCorpus.generate(n_books=2, paragraphs_per_book=5, seed=1)
        b = EbookCorpus.generate(n_books=2, paragraphs_per_book=5, seed=1)
        assert a[0].text() == b[0].text()

    def test_books_differ(self, corpus):
        assert corpus[0].text() != corpus[1].text()

    def test_invalid_dimensions(self):
        with pytest.raises(DatasetError):
            EbookCorpus.generate(n_books=0)

    def test_sizes(self, corpus):
        assert corpus.total_bytes() == sum(b.size_bytes() for b in corpus)
        assert corpus.total_paragraphs() == 120


class TestPages:
    def test_page_slicing(self, corpus):
        book = corpus[0]
        page = book.page(0, paragraphs_per_page=5)
        assert page == list(book.paragraphs[:5])
        page2 = book.page(1, paragraphs_per_page=5)
        assert page2 == list(book.paragraphs[5:10])

    def test_out_of_range_page(self, corpus):
        with pytest.raises(DatasetError):
            corpus[0].page(99, paragraphs_per_page=10)

    def test_iteration(self, corpus):
        assert len(list(corpus)) == 4
