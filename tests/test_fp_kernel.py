"""Differential tests: the fused ingest kernel vs the reference pipeline.

The kernel (:mod:`repro.fingerprint.kernel`) must be *field-identical*
to the retained reference implementations — same hash values at the
same positions with the same ``original_span`` offsets — on every input
it dispatches for, and the dispatcher must route anything else to the
reference path unchanged. Hypothesis drives both claims over full
Unicode alphabets, including the lower-expanding U+0130 İ that can
never reach the kernel (it does not encode to Latin-1) but must not
perturb dispatch.
"""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint import Fingerprinter, HAS_NUMPY
from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.kernel import (
    IngestKernel,
    normalize_latin1,
    skipscan_winnow,
)
from repro.fingerprint.normalize import normalize
from repro.fingerprint.rolling_hash import KarpRabin
from repro.fingerprint.winnowing import winnow
from repro.obs.registry import MetricsRegistry

CONFIG = FingerprintConfig(ngram_size=5, window_size=4)

#: Latin-1-only prose, including the bytes that exercise the translate
#: tables hardest: µ (0xB5, already lowercase), ß (0xDF, lower is
#: itself), accented letters with distinct lowercase bytes.
latin1_prose = st.text(
    alphabet=(
        string.ascii_letters + string.digits + " .,!?-\n\t"
        + "µßÆæÇçÉéÑñÖöÜüÀàÝý½¼²³ª°"
    ),
    min_size=0,
    max_size=300,
)

#: Full-Unicode prose (same alphabet as test_prop_fingerprint): İ, ẞ,
#: ligatures, Greek/Cyrillic/CJK — everything the kernel must refuse.
unicode_prose = st.text(
    alphabet=(
        string.ascii_letters + string.digits + " .,!?-\n"
        + "İıẞßﬁﬂÆæÇçÉéÑñÖöÜüΣσЖж北京"
    ),
    min_size=0,
    max_size=300,
)


def _fingerprinters(config):
    """Reference + every kernel path available for *config*."""
    reference = Fingerprinter(
        FingerprintConfig(
            ngram_size=config.ngram_size,
            window_size=config.window_size,
            hash_bits=config.hash_bits,
            use_kernel=False,
        )
    )
    kernels = [Fingerprinter(config, kernel_mode="pure")]
    if HAS_NUMPY and config.hash_bits <= 32:
        kernels.append(Fingerprinter(config, kernel_mode="numpy"))
    return reference, kernels


class TestKernelDifferential:
    """Kernel fingerprints are field-identical to the reference's."""

    @given(latin1_prose)
    @settings(max_examples=150)
    def test_latin1_identical(self, text):
        reference, kernels = _fingerprinters(CONFIG)
        expected = reference.fingerprint(text)
        for fp in kernels:
            actual = fp.fingerprint(text)
            assert actual.hashes == expected.hashes
            assert actual.selections == expected.selections

    @given(unicode_prose)
    @settings(max_examples=150)
    def test_unicode_dispatch_identical(self, text):
        """Wide text falls back to the char path; results never differ."""
        reference, kernels = _fingerprinters(CONFIG)
        expected = reference.fingerprint(text)
        for fp in kernels:
            actual = fp.fingerprint(text)
            assert actual.hashes == expected.hashes
            assert actual.selections == expected.selections

    @given(latin1_prose)
    @settings(max_examples=60)
    def test_paper_config_identical(self, text):
        reference, kernels = _fingerprinters(FingerprintConfig())
        expected = reference.fingerprint(text)
        for fp in kernels:
            assert fp.fingerprint(text).selections == expected.selections

    def test_span_types_are_plain_ints(self):
        """numpy offsets must not leak numpy scalars into spans."""
        _, kernels = _fingerprinters(CONFIG)
        for fp in kernels:
            for selection in fp.fingerprint("hello winnowing world 42").selections:
                assert type(selection.orig_start) is int
                assert type(selection.orig_end) is int


class TestNormalizeLatin1:
    """The translate-table S1 equals normalize() on all Latin-1 input."""

    def test_all_256_bytes(self):
        for b in range(256):
            text = chr(b) + "aA." + chr(b)
            norm, offsets = normalize_latin1(text.encode("latin-1"))
            expected = normalize(text)
            assert norm.decode("latin-1") == expected.text
            assert tuple(offsets) == expected.offsets

    @given(latin1_prose)
    def test_matches_reference(self, text):
        norm, offsets = normalize_latin1(text.encode("latin-1"))
        expected = normalize(text)
        assert norm.decode("latin-1") == expected.text
        assert tuple(offsets) == expected.offsets


class TestSkipscanWinnow:
    """The skip-scan equals the deque winnow, ties included."""

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), max_size=150),
        st.integers(min_value=1, max_value=12),
    )
    def test_matches_deque(self, values, window):
        assert skipscan_winnow(values, window) == winnow(values, window)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), max_size=150),
        st.integers(min_value=1, max_value=12),
    )
    def test_matches_deque_tie_heavy(self, values, window):
        """A tiny value range forces constant tie-breaking decisions."""
        assert skipscan_winnow(values, window) == winnow(values, window)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            skipscan_winnow([1, 2, 3], 0)

    def test_fuzz_long_inputs(self):
        rng = random.Random(20160814)
        for _ in range(50):
            n = rng.randrange(0, 2000)
            values = [rng.randrange(0, 50) for _ in range(n)]
            w = rng.randrange(1, 40)
            assert skipscan_winnow(values, w) == winnow(values, w)


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
class TestNumpyKernel:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 1), max_size=150
        ),
        st.integers(min_value=1, max_value=12),
    )
    def test_winnow_matches_deque(self, values, window):
        import numpy as np

        from repro.fingerprint.kernel import _winnow_numpy

        if not values:
            return
        arr = np.asarray(values, dtype=np.uint64)
        assert _winnow_numpy(arr, window) == winnow(values, window)

    @given(latin1_prose)
    @settings(max_examples=80)
    def test_hash_matches_rolling(self, text):
        kernel = Fingerprinter(CONFIG, kernel_mode="numpy").kernel
        hasher = KarpRabin(ngram_size=CONFIG.ngram_size)
        norm, _ = normalize_latin1(text.encode("latin-1"))
        if len(norm) < CONFIG.ngram_size:
            return
        assert kernel._hash_numpy(norm).tolist() == hasher.hash_all_bytes(norm)

    def test_numpy_mode_requires_packable_config(self):
        wide = FingerprintConfig(ngram_size=5, window_size=4, hash_bits=40)
        hasher = KarpRabin(ngram_size=5, hash_bits=40)
        with pytest.raises(ValueError):
            IngestKernel(wide, hasher, mode="numpy")
        # auto silently falls back to the pure path.
        assert not IngestKernel(wide, hasher, mode="auto").uses_numpy

    def test_wide_hash_bits_still_correct(self):
        """hash_bits > 32 configs run (pure path) and match reference."""
        wide = FingerprintConfig(ngram_size=5, window_size=4, hash_bits=40)
        reference, kernels = _fingerprinters(wide)
        text = "The quick brown fox jumps over the lazy dog" * 4
        for fp in kernels:
            assert (
                fp.fingerprint(text).selections
                == reference.fingerprint(text).selections
            )


class TestKernelPlumbing:
    def test_rejects_unknown_mode(self):
        hasher = KarpRabin(ngram_size=5)
        with pytest.raises(ValueError):
            IngestKernel(CONFIG, hasher, mode="turbo")

    def test_encode_dispatch_rule(self):
        kernel = Fingerprinter(CONFIG).kernel
        assert kernel.encode("plain ascii") == b"plain ascii"
        assert kernel.encode("caf\xe9") == b"caf\xe9"
        assert kernel.encode("İstanbul") is None
        assert kernel.encode("北京") is None

    def test_use_kernel_false_has_no_kernel(self):
        fp = Fingerprinter(FingerprintConfig(use_kernel=False))
        assert fp.kernel is None

    def test_use_kernel_excluded_from_config_equality(self):
        assert FingerprintConfig(use_kernel=False) == FingerprintConfig()
        assert hash(FingerprintConfig(use_kernel=False)) == hash(
            FingerprintConfig()
        )

    def test_stage_histograms_recorded_kernel_path(self):
        registry = MetricsRegistry()
        fp = Fingerprinter(CONFIG, registry=registry)
        fp.fingerprint("a kernel-path text, long enough to hash")
        snapshot = registry.snapshot()
        for stage in ("normalize", "hash", "winnow"):
            assert snapshot[f"fingerprint.{stage}"]["count"] == 1

    def test_stage_histograms_recorded_reference_path(self):
        registry = MetricsRegistry()
        fp = Fingerprinter(CONFIG, registry=registry)
        fp.fingerprint("İstanbul text wide enough to hash properly")
        snapshot = registry.snapshot()
        for stage in ("normalize", "hash", "winnow"):
            assert snapshot[f"fingerprint.{stage}"]["count"] == 1

    def test_engine_scope_collects_ingest_histograms(self):
        from repro.disclosure.engine import DisclosureEngine

        engine = DisclosureEngine(CONFIG)
        engine.observe("seg-1", "a paragraph that is long enough to fingerprint")
        snapshot = engine.registry.snapshot()
        assert snapshot["engine.paragraph.fingerprint.normalize"]["count"] > 0
