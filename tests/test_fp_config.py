"""Tests for FingerprintConfig validation and derived thresholds."""

import pytest

from repro.errors import FingerprintError
from repro.fingerprint.config import FingerprintConfig, PAPER_CONFIG, TINY_CONFIG


class TestFingerprintConfig:
    def test_paper_defaults(self):
        config = FingerprintConfig()
        assert (config.ngram_size, config.window_size, config.hash_bits) == (15, 30, 32)

    def test_noise_threshold(self):
        config = FingerprintConfig(ngram_size=15, window_size=30)
        assert config.noise_threshold == 44

    def test_guarantee_alias(self):
        assert TINY_CONFIG.guarantee_threshold == TINY_CONFIG.noise_threshold

    def test_paper_config_constant(self):
        assert PAPER_CONFIG.ngram_size == 15
        assert PAPER_CONFIG.window_size == 30

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_CONFIG.ngram_size = 1  # type: ignore[misc]

    def test_invalid_ngram(self):
        with pytest.raises(FingerprintError):
            FingerprintConfig(ngram_size=0)

    def test_invalid_window(self):
        with pytest.raises(FingerprintError):
            FingerprintConfig(window_size=0)

    def test_invalid_bits(self):
        with pytest.raises(FingerprintError):
            FingerprintConfig(hash_bits=4)

    def test_equality_by_value(self):
        assert FingerprintConfig(6, 3) == FingerprintConfig(6, 3)
        assert FingerprintConfig(6, 3) != FingerprintConfig(6, 4)
