"""Standby catch-up by log shipping, and failover (DESIGN.md §14).

A primary :class:`DisclosureTracker` journals every mutation into a
:class:`WALSet`; a :class:`StandbyLookupServer` pulls the log through a
:class:`LogShipper` and applies it to its own replica. The tests prove
the availability story end to end: incremental catch-up, torn in-flight
records held back, a primary killed mid-stream leaving the standby
verdict-identical to a recovered primary, suppression audit shipping,
and promotion that resumes the clock and re-journals.
"""

import pytest

from repro.datasets.manuals import ManualsCorpus
from repro.disclosure import DisclosureTracker
from repro.disclosure.wal import (
    EngineJournal,
    LogShipper,
    WALSet,
    read_wal_directory,
    max_record_timestamp,
    replay_records,
)
from repro.errors import (
    DisclosureError,
    LookupRejected,
    LookupTimeout,
    SimulatedCrash,
    StandbyGap,
)
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.crypto import UploadCipher
from repro.plugin.server import StandbyLookupServer
from repro.util.faults import Fault, FaultInjector

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT


def make_primary(directory, *, faults=None, cipher=None):
    """A tracker journaling both granularities into one WAL set."""
    wal = WALSet(directory, fsync="always", faults=faults, cipher=cipher)
    tracker = DisclosureTracker(TINY_CONFIG)
    journal = EngineJournal(wal)
    tracker.paragraphs.attach_journal(journal)
    tracker.documents.attach_journal(journal)
    return wal, tracker


def make_standby(directory, *, cipher=None, faults=None):
    return StandbyLookupServer(
        LogShipper(directory, cipher=cipher),
        config=TINY_CONFIG,
        faults=faults,
    )


def recovered_primary(directory, *, cipher=None):
    """What crash recovery on the primary's host would rebuild."""
    records, _torn = read_wal_directory(directory, cipher=cipher)
    tracker = DisclosureTracker(TINY_CONFIG)
    replay_records(
        records,
        lambda kind: tracker.documents if kind == "document"
        else tracker.paragraphs,
    )
    tracker.resume_clock(max_record_timestamp(records))
    return tracker


def verdict_summary(report):
    """Comparable essence of a TrackerReport: who disclosed what."""
    out = []
    for par_id, par_report in report.paragraph_reports:
        out.append(
            (
                par_id,
                sorted((s.segment_id, s.score) for s in par_report.sources),
            )
        )
    doc = report.document_report
    out.append(
        ("__doc__", sorted((s.segment_id, s.score) for s in doc.sources))
        if doc is not None
        else ("__doc__", None)
    )
    return out


DOC = [("p1", SECRET_TEXT), ("p2", OTHER_TEXT)]


class TestCatchUp:
    def test_incremental(self, tmp_path):
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        first = standby.catch_up()
        assert first == 3  # two paragraphs + one document observe
        assert standby.applied_lsn == 3
        primary.observe_document("doc2", [("p3", THIRD_TEXT)])
        assert standby.catch_up() == 2
        assert standby.catch_up() == 0  # idempotent at the tip
        wal.close()

    def test_replica_state_matches_primary(self, tmp_path):
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        standby.catch_up()
        for kind in ("paragraphs", "documents"):
            ours = getattr(standby.tracker, kind).segment_db
            theirs = getattr(primary, kind).segment_db
            assert sorted(ours.ids()) == sorted(theirs.ids())
            for segment_id in theirs.ids():
                assert (
                    ours.get(segment_id).last_updated
                    == theirs.get(segment_id).last_updated
                )
        wal.close()

    def test_torn_inflight_record_held_back(self, tmp_path):
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        standby.catch_up()
        # A torn append in flight: partial bytes past the good tail.
        path = wal.paths()[0]
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x01")
        assert standby.catch_up() == 0
        wal.close()

    def test_encrypted_log_ships(self, tmp_path):
        cipher = UploadCipher("ship-key")
        wal, primary = make_primary(tmp_path, cipher=cipher)
        standby = make_standby(tmp_path, cipher=cipher)
        primary.observe_document("doc1", DOC)
        standby.catch_up()
        report = standby.check_document("probe", [("q1", SECRET_TEXT)])
        assert report.disclosing
        wal.close()

    def test_caught_up_standby_survives_rotation(self, tmp_path):
        """A standby that polled every record before the primary rotates
        sees the compact record as a harmless marker and keeps going."""
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        standby.catch_up()
        wal.rotate(wal.last_lsn)  # primary compacts; standby is current
        assert standby.catch_up() == 0  # compact marker applies as no-op
        primary.observe_document("doc2", [("p3", THIRD_TEXT)])
        assert standby.catch_up() == 2
        wal.close()

    def test_rotation_gap_raises_instead_of_diverging(self, tmp_path):
        """If the primary rotates records the standby never polled, the
        folded records exist only in the (unshipped) snapshot — catch_up
        must refuse, not silently skip them forever."""
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        standby.catch_up()
        primary.observe_document("doc2", [("p3", THIRD_TEXT)])
        wal.rotate(wal.last_lsn)  # folds doc2's records before any poll
        with pytest.raises(StandbyGap, match="re-seed"):
            standby.catch_up()
        # The gap is permanent: a retry refuses again rather than
        # advancing past the hole.
        with pytest.raises(StandbyGap):
            standby.catch_up()
        assert standby.stats()["standby_gaps_detected"] == 2
        wal.close()

    def test_fresh_standby_cannot_join_from_rotated_log(self, tmp_path):
        """A standby bootstrapped with an empty replica against a
        primary that already compacted is missing everything the
        snapshot holds — that is a gap, not a clean start."""
        wal, primary = make_primary(tmp_path)
        primary.observe_document("doc1", DOC)
        wal.rotate(wal.last_lsn)
        standby = make_standby(tmp_path)
        with pytest.raises(StandbyGap):
            standby.catch_up()
        wal.close()

    def test_failed_apply_is_retried_not_skipped(self, tmp_path):
        """If applying a shipped record raises mid-batch, the cursor
        must stay on the last applied record so the failed record and
        the remainder of the batch are retried — not silently skipped
        because poll() already advanced past them."""
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.paragraphs.observe("good1", SECRET_TEXT)
        good1_lsn = wal.last_lsn
        # A structurally broken record (an observe with no selections):
        # replay raises while decoding it, with a good record after it.
        wal.append("observe", key="bad", kind="paragraph", id="bad")
        primary.paragraphs.observe("good2", OTHER_TEXT)
        with pytest.raises(Exception):
            standby.catch_up()
        assert standby.applied_lsn == good1_lsn  # good1 applied, cursor held
        assert standby.tracker.paragraphs.segment_db.ids() == ["good1"]
        # The bad record is retried (and fails again) instead of the
        # batch remainder being skipped forever.
        with pytest.raises(Exception):
            standby.catch_up()
        assert standby.applied_lsn == good1_lsn
        assert "good2" not in standby.tracker.paragraphs.segment_db.ids()
        wal.close()

    def test_suppressions_ship_without_state_change(self, tmp_path):
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        journal = EngineJournal(wal)
        journal.log_suppress(
            user="alice", tag="CONTACT_INFO", segment_id="p1",
            justification="sharing my own address", timestamp=5.0,
            target_service="mail",
        )
        standby.catch_up()
        assert len(standby.shipped_suppressions) == 1
        shipped = standby.shipped_suppressions[0]
        assert shipped["user"] == "alice"
        assert shipped["tag"] == "CONTACT_INFO"
        # The audit obligation shipped; the replica's databases did not
        # grow a phantom segment for it.
        assert sorted(standby.tracker.paragraphs.segment_db.ids()) == [
            "p1", "p2",
        ]
        wal.close()


class TestFailover:
    def test_standby_matches_recovered_primary_after_crash(self, tmp_path):
        """Primary dies mid-stream: the standby, caught up from the log,
        serves exactly the verdicts a recovered primary would."""
        faults = FaultInjector(
            schedule=[Fault.none()] * 4 + [Fault.slow(12)]  # torn 5th append
        )
        wal, primary = make_primary(tmp_path, faults=faults)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        standby.catch_up()  # mid-stream: replica is already warm
        with pytest.raises(SimulatedCrash):
            primary.observe_document(
                "doc2", [("p3", THIRD_TEXT), ("p4", SECRET_TEXT)]
            )
        standby.catch_up()
        reference = recovered_primary(tmp_path)
        probes = [
            ("probe-secret", [("q1", SECRET_TEXT)]),
            ("probe-other", [("q2", OTHER_TEXT), ("q3", THIRD_TEXT)]),
            ("probe-both", [("q4", SECRET_TEXT), ("q5", THIRD_TEXT)]),
        ]
        for doc_id, paragraphs in probes:
            ours = standby.check_document(doc_id, paragraphs)
            theirs = reference.check_document(doc_id, paragraphs)
            assert verdict_summary(ours) == verdict_summary(theirs)
        # The torn 5th append (first paragraph of doc2 made it, the
        # second did not): p3 replicated, p4 lost with the primary.
        assert sorted(standby.tracker.paragraphs.segment_db.ids()) == [
            "p1", "p2", "p3",
        ]

    def test_promote_resumes_clock(self, tmp_path):
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        primary.observe_document("doc1", DOC)
        standby.catch_up()
        promoted = standby.promote()
        # "aaa" sorts before "p1"; with a rewound clock the (timestamp,
        # id) tie-break would let it steal authoritative ownership.
        promoted.paragraphs.observe("aaa", SECRET_TEXT)
        record = promoted.paragraphs.segment_db.get("p1")
        for h in record.fingerprint.hashes:
            assert promoted.paragraphs.hash_db.oldest_owner(h) == "p1"
        wal.close()

    def test_promoted_standby_stops_following(self, tmp_path):
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        standby.promote()
        with pytest.raises(DisclosureError):
            standby.catch_up()
        with pytest.raises(DisclosureError):
            standby.promote()
        wal.close()

    def test_promoted_standby_journals_to_its_own_wal(self, tmp_path):
        wal, primary = make_primary(tmp_path / "primary")
        primary.observe_document("doc1", DOC)
        standby = make_standby(tmp_path / "primary")
        standby.catch_up()
        new_wal = WALSet(tmp_path / "promoted", fsync="always")
        promoted = standby.promote(wal=new_wal)
        promoted.observe_document("doc2", [("p9", THIRD_TEXT)])
        new_wal.close()
        records, _torn = read_wal_directory(tmp_path / "promoted")
        assert [r["id"] for r in records] == ["p9", "doc2"]
        # ...which is enough to warm the *next* standby.
        next_standby = make_standby(tmp_path / "promoted")
        next_standby.catch_up()
        assert next_standby.tracker.paragraphs.segment_db.ids() == ["p9"]
        wal.close()

    def test_serving_fault_envelope(self, tmp_path):
        wal, primary = make_primary(tmp_path)
        primary.observe_document("doc1", DOC)
        standby = make_standby(
            tmp_path,
            faults=FaultInjector(
                schedule=[Fault.drop(), Fault.error(), Fault.slow(9.0)]
            ),
        )
        standby.catch_up()
        with pytest.raises(LookupTimeout):
            standby.handle_scan(SECRET_TEXT, timeout=1.0)
        with pytest.raises(LookupRejected):
            standby.handle_scan(SECRET_TEXT, timeout=1.0)
        with pytest.raises(LookupTimeout):  # latency 9.0 > timeout 1.0
            standby.handle_scan(SECRET_TEXT, timeout=1.0)
        report, latency = standby.handle_scan(SECRET_TEXT, timeout=1.0)
        assert report.disclosing
        assert latency == 0.0
        stats = standby.stats()
        assert stats["standby_dropped"] == 1
        assert stats["standby_rejected"] == 1
        assert stats["standby_timed_out"] == 1
        wal.close()


class TestManualsVerdictIdentity:
    """Acceptance: a standby caught up by log shipping returns
    verdict-identical Algorithm 1 results on the manuals corpus."""

    def test_verdicts_identical_across_corpus(self, tmp_path):
        corpus = ManualsCorpus.generate(seed=2016)
        wal, primary = make_primary(tmp_path)
        standby = make_standby(tmp_path)
        for chapter in corpus:
            base = chapter.version(chapter.base_version)
            primary.observe_document(
                chapter.chapter_id,
                [
                    (f"{chapter.chapter_id}/p{i}", text)
                    for i, text in enumerate(base.paragraphs)
                ],
            )
            standby.catch_up()  # interleaved: catch-up mid-stream, not once
        for chapter in corpus:
            for version in chapter.versions[1:]:
                doc_id = f"{chapter.chapter_id}@{version.version}"
                paragraphs = [
                    (f"{doc_id}/p{i}", text)
                    for i, text in enumerate(version.paragraphs)
                ]
                ours = standby.check_document(doc_id, paragraphs)
                theirs = primary.check_document(doc_id, paragraphs)
                assert verdict_summary(ours) == verdict_summary(theirs)
        wal.close()
