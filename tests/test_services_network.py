"""Tests for the simulated network and its fault-injecting wrapper."""

import pytest

from repro.browser.http import HttpRequest
from repro.errors import NetworkError
from repro.services import FaultyNetwork, Network, WikiService
from repro.util.faults import Fault, FaultInjector


class TestNetwork:
    def test_register_and_route(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        assert network.service_at(wiki.origin) is wiki

    def test_duplicate_origin_rejected(self):
        network = Network()
        network.register(WikiService())
        with pytest.raises(NetworkError):
            network.register(WikiService())

    def test_unknown_origin_502(self):
        network = Network()
        response = network.deliver(HttpRequest("GET", "https://ghost.example/x"))
        assert response.status == 502

    def test_unknown_service_lookup_raises(self):
        with pytest.raises(NetworkError):
            Network().service_at("https://nope.example")

    def test_request_log_records_delivered(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        network.deliver(
            HttpRequest(
                "POST",
                wiki.url("/wiki/save"),
                form_data={"page": "P", "body": "content"},
            )
        )
        assert len(network.request_log) == 1
        assert network.requests_to(wiki.origin)[0].method == "POST"

    def test_render_page_not_logged(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        network.render_page(wiki.page_url("Home"))
        assert network.request_log == []

    def test_services_listing(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        assert network.services() == [wiki.origin]

    def test_network_backref_set(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        assert wiki.network is network


def _save_request(wiki):
    return HttpRequest(
        "POST", wiki.url("/wiki/save"), form_data={"page": "P", "body": "content"}
    )


def _faulty(*faults):
    network = Network()
    wiki = WikiService()
    network.register(wiki)
    return FaultyNetwork(network, FaultInjector(schedule=list(faults))), wiki


class TestFaultyNetwork:
    def test_healthy_delivery_passes_through(self):
        faulty, wiki = _faulty()
        response = faulty.deliver(_save_request(wiki))
        assert response.status == 200
        assert len(faulty.wrapped.request_log) == 1
        assert faulty.stats()["delivered"] == 1

    def test_drop_raises_and_never_reaches_backend(self):
        faulty, wiki = _faulty(Fault.drop())
        with pytest.raises(NetworkError, match="dropped"):
            faulty.deliver(_save_request(wiki))
        # The backend never ran: nothing in the wrapped request log.
        assert faulty.wrapped.request_log == []
        assert faulty.stats()["dropped"] == 1
        assert faulty.stats()["delivered"] == 0

    def test_error_synthesised_at_edge(self):
        faulty, wiki = _faulty(Fault.error(503))
        response = faulty.deliver(_save_request(wiki))
        assert response.status == 503
        assert "injected fault" in response.body
        assert faulty.wrapped.request_log == []
        assert faulty.stats()["errored"] == 1

    def test_latency_recorded_then_delivered(self):
        slept = []
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        faulty = FaultyNetwork(
            network,
            FaultInjector(schedule=[Fault.slow(0.25)]),
            sleep=slept.append,
        )
        response = faulty.deliver(_save_request(wiki))
        assert response.status == 200
        assert faulty.latencies == [0.25]
        assert slept == [0.25]
        assert faulty.stats()["delayed"] == 1
        assert faulty.stats()["delivered"] == 1

    def test_schedule_exhausts_to_healthy(self):
        faulty, wiki = _faulty(Fault.drop(), Fault.error(500))
        with pytest.raises(NetworkError):
            faulty.deliver(_save_request(wiki))
        assert faulty.deliver(_save_request(wiki)).status == 500
        # Past the schedule, everything is healthy again.
        assert faulty.deliver(_save_request(wiki)).status == 200
        stats = faulty.stats()
        assert stats["injected_drop"] == 1
        assert stats["injected_error"] == 1
        assert stats["injected_none"] == 1

    def test_delegates_like_a_network(self):
        faulty, wiki = _faulty()
        assert faulty.service_at(wiki.origin) is wiki
        assert faulty.services() == [wiki.origin]
        document, service = faulty.render_page(wiki.page_url("Home"))
        assert service is wiki
        assert faulty.request_log == []

    def test_seeded_rates_are_reproducible(self):
        def run(seed):
            network = Network()
            wiki = WikiService()
            network.register(wiki)
            faulty = FaultyNetwork(
                network, FaultInjector(seed=seed, drop_rate=0.3, error_rate=0.2)
            )
            outcomes = []
            for _ in range(40):
                try:
                    outcomes.append(faulty.deliver(_save_request(wiki)).status)
                except NetworkError:
                    outcomes.append("drop")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)
