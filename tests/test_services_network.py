"""Tests for the simulated network."""

import pytest

from repro.browser.http import HttpRequest
from repro.errors import NetworkError
from repro.services import Network, WikiService


class TestNetwork:
    def test_register_and_route(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        assert network.service_at(wiki.origin) is wiki

    def test_duplicate_origin_rejected(self):
        network = Network()
        network.register(WikiService())
        with pytest.raises(NetworkError):
            network.register(WikiService())

    def test_unknown_origin_502(self):
        network = Network()
        response = network.deliver(HttpRequest("GET", "https://ghost.example/x"))
        assert response.status == 502

    def test_unknown_service_lookup_raises(self):
        with pytest.raises(NetworkError):
            Network().service_at("https://nope.example")

    def test_request_log_records_delivered(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        network.deliver(
            HttpRequest(
                "POST",
                wiki.url("/wiki/save"),
                form_data={"page": "P", "body": "content"},
            )
        )
        assert len(network.request_log) == 1
        assert network.requests_to(wiki.origin)[0].method == "POST"

    def test_render_page_not_logged(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        network.render_page(wiki.page_url("Home"))
        assert network.request_log == []

    def test_services_listing(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        assert network.services() == [wiki.origin]

    def test_network_backref_set(self):
        network = Network()
        wiki = WikiService()
        network.register(wiki)
        assert wiki.network is network
