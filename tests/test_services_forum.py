"""Tests for the forum service."""

import pytest

from repro.browser import Browser
from repro.browser.http import HttpRequest
from repro.services import ForumService, Network


@pytest.fixture
def setup():
    network = Network()
    forum = ForumService()
    network.register(forum)
    return Browser(network), forum


class TestPosting:
    def test_post_through_composer(self, setup):
        browser, forum = setup
        assert forum.post(browser.new_tab(), "general", "First post content.")
        assert forum.posts_in("general") == ["First post content."]

    def test_posts_accumulate_in_thread(self, setup):
        browser, forum = setup
        tab = browser.new_tab()
        forum.post(tab, "general", "one")
        forum.post(tab, "general", "two")
        assert forum.posts_in("general") == ["one", "two"]

    def test_threads_independent(self, setup):
        browser, forum = setup
        tab = browser.new_tab()
        forum.post(tab, "alpha", "a")
        forum.post(tab, "beta", "b")
        assert forum.posts_in("alpha") == ["a"]

    def test_empty_thread(self, setup):
        _browser, forum = setup
        assert forum.posts_in("void") == []


class TestRendering:
    def test_existing_posts_rendered(self, setup):
        browser, forum = setup
        forum.add_post("general", "Rendered post body text.")
        tab = browser.open(forum.thread_url("general"))
        assert "Rendered post body text." in tab.document.text_content()

    def test_composer_form_present(self, setup):
        browser, forum = setup
        tab = browser.open(forum.thread_url("general"))
        assert tab.document.get_element_by_id("composer") is not None


class TestBackendProtocol:
    def test_missing_fields_rejected(self, setup):
        _browser, forum = setup
        response = forum.handle_request(
            HttpRequest("POST", forum.url("/post"), form_data={"topic": "t"})
        )
        assert response.status == 400
