"""Deterministic concurrency differential test for the shared engine.

Eight threads drive a shared :class:`DisclosureEngine` through a seeded,
barrier-scheduled plan of observe / edit / discard / query operations.
The schedule makes the outcome deterministic without giving up real
concurrency:

* **query rounds** — all eight threads issue disclosure queries at the
  same time (sharing the read lock); there is no writer in the round,
  so every report must be *field-identical* to replaying the linearised
  op log on a serial reference engine;
* **write rounds** — exactly one thread mutates (observe / edit /
  discard, taking the write lock) while the other seven hammer
  concurrent "noise" queries. Those queries race the write by design,
  so they are checked structurally (no dead segments, sane scores), not
  against the replay;
* barriers separate rounds, so the op log order *is* the round order
  and the logical clock ticks identically in the replay.

No sleeps anywhere: scheduling is entirely barrier-driven, so the test
is exactly repeatable for a fixed seed. Seeds come from
``BF_CONC_SEEDS`` (comma-separated) so the CI stress job can run the
same test under many distinct schedules with a deadlock timeout.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.disclosure import DisclosureEngine
from repro.fingerprint.config import FingerprintConfig

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)
N_THREADS = 8
N_ROUNDS = 25  # 8 threads x 25 rounds = 200 ops
SEGMENT_POOL = [f"seg-{i}" for i in range(12)]
WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
]

SEEDS = [
    int(s)
    for s in os.environ.get("BF_CONC_SEEDS", "2016,2017").split(",")
    if s.strip()
]


def _text(rng: random.Random) -> str:
    return " ".join(rng.choice(WORDS) for _ in range(rng.randint(5, 20)))


def _build_plan(seed: int):
    """The full deterministic schedule: one action per (round, thread).

    Actions:
        ("observe", seg, text)  — create or edit (write lock)
        ("remove", seg)         — discard (write lock)
        ("query_fp", text)      — checked query by fingerprint
        ("query_target", seg)   — checked query by tracked id
        ("noise", text)         — unchecked query racing a write
    """
    rng = random.Random(seed)
    live: set = set()
    plan = []
    for _round in range(N_ROUNDS):
        write_round = rng.random() < 0.45 or not live
        actions = {}
        if write_round:
            writer = rng.randrange(N_THREADS)
            choice = rng.random()
            if live and choice < 0.2:
                seg = rng.choice(sorted(live))
                actions[writer] = ("remove", seg)
                live.discard(seg)
            elif live and choice < 0.55:
                seg = rng.choice(sorted(live))  # edit in place
                actions[writer] = ("observe", seg, _text(rng))
            else:
                seg = rng.choice(SEGMENT_POOL)
                actions[writer] = ("observe", seg, _text(rng))
                live.add(seg)
            for tid in range(N_THREADS):
                if tid != writer:
                    actions[tid] = ("noise", _text(rng))
        else:
            for tid in range(N_THREADS):
                if live and rng.random() < 0.5:
                    actions[tid] = ("query_target", rng.choice(sorted(live)))
                else:
                    actions[tid] = ("query_fp", _text(rng))
        plan.append(actions)
    return plan


def _apply(engine: DisclosureEngine, action):
    """Run one action; returns the report for checked queries, else None."""
    kind = action[0]
    if kind == "observe":
        engine.observe(action[1], action[2], threshold=0.5)
        return None
    if kind == "remove":
        engine.remove(action[1])
        return None
    if kind == "query_target":
        return engine.disclosing_sources(action[1])
    # query_fp and noise
    return engine.disclosing_sources(fingerprint=engine.fingerprint(action[1]))


def _assert_reports_identical(actual, expected, context):
    assert actual.target_id == expected.target_id, context
    assert actual.candidates_checked == expected.candidates_checked, context
    assert len(actual.sources) == len(expected.sources), context
    for got, want in zip(actual.sources, expected.sources):
        assert got.segment_id == want.segment_id, context
        assert got.score == want.score, context
        assert got.threshold == want.threshold, context
        assert got.matched_hashes == want.matched_hashes, context
        assert got.kind == want.kind, context
        assert got.doc_id == want.doc_id, context


@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_engine_matches_serial_replay(seed):
    plan = _build_plan(seed)
    shared = DisclosureEngine(CONFIG)
    outputs = {}  # (round, tid) -> report, for checked queries
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def worker(tid: int) -> None:
        try:
            for r, actions in enumerate(plan):
                barrier.wait(timeout=30)
                action = actions[tid]
                report = _apply(shared, action)
                if action[0] in ("query_fp", "query_target"):
                    outputs[(r, tid)] = report
                elif action[0] == "noise" and report is not None:
                    # Races the round's writer: check structure only.
                    assert set(report.source_ids()) <= set(SEGMENT_POOL)
                    for source in report.sources:
                        assert 0.0 < source.score <= 1.0
                barrier.wait(timeout=30)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((tid, exc))
            barrier.abort()

    threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert not any(t.is_alive() for t in threads), "worker deadlocked"

    # The shared engine's indexes survived 8-thread contention intact.
    shared.hash_db.check_invariants()

    # Replay the linearised op log on a serial reference engine. Write
    # rounds contribute exactly one mutation each, so round order *is*
    # the linearisation; query-round reports must match field-for-field.
    serial = DisclosureEngine(CONFIG)
    for r, actions in enumerate(plan):
        kinds = {a[0] for a in actions.values()}
        if "observe" in kinds or "remove" in kinds:
            for action in actions.values():
                if action[0] in ("observe", "remove"):
                    _apply(serial, action)
        else:
            for tid in range(N_THREADS):
                expected = _apply(serial, actions[tid])
                _assert_reports_identical(
                    outputs[(r, tid)], expected, f"seed={seed} round={r} tid={tid}"
                )

    # End-state equivalence: same segments, same hash table, same owners,
    # and field-identical reports for every live segment.
    assert sorted(shared.segment_db.ids()) == sorted(serial.segment_db.ids())
    assert set(shared.hash_db.hashes()) == set(serial.hash_db.hashes())
    for h in serial.hash_db.hashes():
        assert shared.hash_db.oldest_owner(h) == serial.hash_db.oldest_owner(h)
    for seg in serial.segment_db.ids():
        _assert_reports_identical(
            shared.disclosing_sources(seg),
            serial.disclosing_sources(seg),
            f"seed={seed} final segment={seg}",
        )

    # Lock accounting is exact: one write acquisition per mutation, one
    # read acquisition per query (checked, noise, and final sweep).
    n_writes = sum(
        1
        for actions in plan
        for a in actions.values()
        if a[0] in ("observe", "remove")
    )
    n_queries = sum(
        1
        for actions in plan
        for a in actions.values()
        if a[0] in ("query_fp", "query_target", "noise")
    )
    stats = shared.lock.stats()
    assert stats["write_acquisitions"] == n_writes
    assert stats["read_acquisitions"] == n_queries + len(serial.segment_db.ids())


# ----------------------------------------------------------------------
# Epoch-memoized verdict cache differential (DESIGN.md §13)
# ----------------------------------------------------------------------
#
# Same barrier scheme, one layer up: eight threads drive a shared
# sharded PolicyLookup — whose verdict cache is keyed on (fingerprint
# digest, per-shard epochs, label epoch) — through query rounds and
# single-writer mutation rounds (observe / declassify / tag). Every
# checked verdict, cache hit or miss, must be field-identical to an
# *uncached* serial replay of the linearised log on an unsharded model:
# a stale cache entry served after an epoch under-bump shows up as a
# diverging verdict.

from repro.plugin.lookup import PolicyLookup  # noqa: E402
from repro.tdm import Label, PolicyStore, TextDisclosureModel  # noqa: E402
from repro.tdm.labels import SegmentLabel  # noqa: E402

LOOKUP_SRC = "https://conc-src.example.com"
LOOKUP_DST = "https://conc-dst.example.com"
SOURCE_POOL = [f"src-{i}" for i in range(6)]
UPLOAD_DOCS = [f"up-{i}" for i in range(4)]
N_TAGS = 4


def _build_lookup_model(n_shards):
    policies = PolicyStore()
    policies.register_service(
        LOOKUP_SRC, privilege=Label.of("s"), confidentiality=Label.of("s")
    )
    policies.register_service(LOOKUP_DST)
    model = TextDisclosureModel(policies, CONFIG, n_shards=n_shards)
    # Pre-allocated in identical order on every model, so tags compare
    # equal between the shared run and the serial replay.
    tags = [
        model.allocate_custom_tag(f"conc-tag-{i}", owner="op")
        for i in range(N_TAGS)
    ]
    return model, tags


def _build_lookup_plan(seed: int):
    """One action per (round, thread); single writer per write round.

    Actions:
        ("observe", src, text)  — new or edited source (fingerprint
                                  deltas + possible label change)
        ("wipe", src)           — declassify: label epoch, no
                                  fingerprint delta
        ("tag", src, tag_idx)   — custom tag: label epoch, no
                                  fingerprint delta
        ("check", doc, text)    — checked lookup, compared to replay
        ("noise", doc, text)    — lookup racing the writer (structural)
    """
    rng = random.Random(seed * 31 + 7)
    live: list = []
    seen_texts: list = []
    plan = []
    for _round in range(N_ROUNDS):
        write_round = rng.random() < 0.4 or not live
        actions = {}

        def probe_text():
            # Reuse observed source texts often: repeats make cache
            # hits, matches make nontrivial (blocked) verdicts.
            if seen_texts and rng.random() < 0.6:
                return rng.choice(seen_texts)
            return _text(rng)

        if write_round:
            writer = rng.randrange(N_THREADS)
            choice = rng.random()
            if live and choice < 0.2:
                actions[writer] = ("wipe", rng.choice(sorted(live)))
            elif live and choice < 0.4:
                actions[writer] = (
                    "tag",
                    rng.choice(sorted(live)),
                    rng.randrange(N_TAGS),
                )
            else:
                src = rng.choice(SOURCE_POOL)
                text = _text(rng)
                actions[writer] = ("observe", src, text)
                if src not in live:
                    live.append(src)
                seen_texts.append(text)
            for tid in range(N_THREADS):
                if tid != writer:
                    actions[tid] = (
                        "noise", rng.choice(UPLOAD_DOCS), probe_text()
                    )
        else:
            for tid in range(N_THREADS):
                actions[tid] = (
                    "check", rng.choice(UPLOAD_DOCS), probe_text()
                )
        plan.append(actions)
    return plan


def _apply_lookup(lookup: PolicyLookup, action):
    kind = action[0]
    model = lookup.model
    if kind == "observe":
        model.observe(
            LOOKUP_SRC,
            action[1],
            [(f"{action[1]}#p0", action[2])],
        )
        return None
    if kind == "wipe":
        model.set_label(f"{action[1]}#p0", SegmentLabel())
        model.set_label(action[1], SegmentLabel())
        return None
    if kind == "tag":
        tag = model.policies.tag(f"conc-tag-{action[2]}")
        model.add_tag_to_segment(f"{action[1]}#p0", tag)
        return None
    # check and noise
    doc, text = action[1], action[2]
    return lookup.lookup(LOOKUP_DST, doc, [(f"{doc}#p0", text)])


def _apply_serial_uncached(model: TextDisclosureModel, action):
    """Replay one action with no caches anywhere near the verdict."""
    if action[0] in ("observe", "wipe", "tag"):
        # Mutators are identical; borrow a throwaway lookup wrapper.
        class _Shim:
            pass

        shim = _Shim()
        shim.model = model
        return _apply_lookup(shim, action)  # type: ignore[arg-type]
    doc, text = action[1], action[2]
    return model.check_upload(LOOKUP_DST, doc, [(f"{doc}#p0", text)])


def _assert_decisions_identical(actual, expected, context):
    assert actual.service_id == expected.service_id, context
    assert actual.allowed == expected.allowed, context
    assert len(actual.violations) == len(expected.violations), context
    for got, want in zip(actual.violations, expected.violations):
        assert got == want, f"{context}: {got} != {want}"
    assert dict(actual.labels) == dict(expected.labels), context


@pytest.mark.parametrize("seed", SEEDS)
def test_epoch_cached_lookup_matches_uncached_replay(seed):
    plan = _build_lookup_plan(seed)
    shared_model, _tags = _build_lookup_model(n_shards=4)
    lookup = PolicyLookup(shared_model)
    outputs = {}
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def worker(tid: int) -> None:
        try:
            for r, actions in enumerate(plan):
                barrier.wait(timeout=30)
                action = actions[tid]
                decision = _apply_lookup(lookup, action)
                if action[0] == "check":
                    outputs[(r, tid)] = decision
                elif action[0] == "noise" and decision is not None:
                    # Races the round's writer: structure only. A
                    # violation may be paragraph- ("up-N#p0") or
                    # document-granularity ("up-N").
                    assert isinstance(decision.allowed, bool)
                    for violation in decision.violations:
                        assert violation.segment_id.startswith("up-")
                barrier.wait(timeout=30)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((tid, exc))
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert not any(t.is_alive() for t in threads), "worker deadlocked"

    # Replay the linearised log on an *unsharded* model with no verdict
    # cache: checked-round decisions must match field-for-field, which
    # simultaneously proves the epoch keys sound under contention and
    # the sharded tier equivalent to the single engine.
    serial_model, _ = _build_lookup_model(n_shards=None)
    for r, actions in enumerate(plan):
        kinds = {a[0] for a in actions.values()}
        if kinds & {"observe", "wipe", "tag"}:
            for action in actions.values():
                if action[0] in ("observe", "wipe", "tag"):
                    _apply_serial_uncached(serial_model, action)
        else:
            for tid in range(N_THREADS):
                expected = _apply_serial_uncached(
                    serial_model, actions[tid]
                )
                _assert_decisions_identical(
                    outputs[(r, tid)],
                    expected,
                    f"seed={seed} round={r} tid={tid}",
                )

    # The cache actually served under contention (text reuse guarantees
    # repeats), and the epoch path never fell back to a global token
    # for these single-paragraph checks.
    stats = lookup.stats()
    assert stats["epoch_cache_hits"] > 0
    assert stats["epoch_cache_misses"] > 0
    assert stats["epoch_cache_doc_global_epochs"] == 0

    # Final-state differential over the whole probe space.
    for doc in UPLOAD_DOCS:
        for src in SOURCE_POOL:
            probe = f"{doc}#p0"
            for text in (f"{src} closing probe", "alpha bravo charlie"):
                _assert_decisions_identical(
                    lookup.lookup(LOOKUP_DST, doc, [(probe, text)]),
                    serial_model.check_upload(
                        LOOKUP_DST, doc, [(probe, text)]
                    ),
                    f"seed={seed} final doc={doc} src={src}",
                )
