"""Deterministic concurrency differential test for the shared engine.

Eight threads drive a shared :class:`DisclosureEngine` through a seeded,
barrier-scheduled plan of observe / edit / discard / query operations.
The schedule makes the outcome deterministic without giving up real
concurrency:

* **query rounds** — all eight threads issue disclosure queries at the
  same time (sharing the read lock); there is no writer in the round,
  so every report must be *field-identical* to replaying the linearised
  op log on a serial reference engine;
* **write rounds** — exactly one thread mutates (observe / edit /
  discard, taking the write lock) while the other seven hammer
  concurrent "noise" queries. Those queries race the write by design,
  so they are checked structurally (no dead segments, sane scores), not
  against the replay;
* barriers separate rounds, so the op log order *is* the round order
  and the logical clock ticks identically in the replay.

No sleeps anywhere: scheduling is entirely barrier-driven, so the test
is exactly repeatable for a fixed seed. Seeds come from
``BF_CONC_SEEDS`` (comma-separated) so the CI stress job can run the
same test under many distinct schedules with a deadlock timeout.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.disclosure import DisclosureEngine
from repro.fingerprint.config import FingerprintConfig

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)
N_THREADS = 8
N_ROUNDS = 25  # 8 threads x 25 rounds = 200 ops
SEGMENT_POOL = [f"seg-{i}" for i in range(12)]
WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
]

SEEDS = [
    int(s)
    for s in os.environ.get("BF_CONC_SEEDS", "2016,2017").split(",")
    if s.strip()
]


def _text(rng: random.Random) -> str:
    return " ".join(rng.choice(WORDS) for _ in range(rng.randint(5, 20)))


def _build_plan(seed: int):
    """The full deterministic schedule: one action per (round, thread).

    Actions:
        ("observe", seg, text)  — create or edit (write lock)
        ("remove", seg)         — discard (write lock)
        ("query_fp", text)      — checked query by fingerprint
        ("query_target", seg)   — checked query by tracked id
        ("noise", text)         — unchecked query racing a write
    """
    rng = random.Random(seed)
    live: set = set()
    plan = []
    for _round in range(N_ROUNDS):
        write_round = rng.random() < 0.45 or not live
        actions = {}
        if write_round:
            writer = rng.randrange(N_THREADS)
            choice = rng.random()
            if live and choice < 0.2:
                seg = rng.choice(sorted(live))
                actions[writer] = ("remove", seg)
                live.discard(seg)
            elif live and choice < 0.55:
                seg = rng.choice(sorted(live))  # edit in place
                actions[writer] = ("observe", seg, _text(rng))
            else:
                seg = rng.choice(SEGMENT_POOL)
                actions[writer] = ("observe", seg, _text(rng))
                live.add(seg)
            for tid in range(N_THREADS):
                if tid != writer:
                    actions[tid] = ("noise", _text(rng))
        else:
            for tid in range(N_THREADS):
                if live and rng.random() < 0.5:
                    actions[tid] = ("query_target", rng.choice(sorted(live)))
                else:
                    actions[tid] = ("query_fp", _text(rng))
        plan.append(actions)
    return plan


def _apply(engine: DisclosureEngine, action):
    """Run one action; returns the report for checked queries, else None."""
    kind = action[0]
    if kind == "observe":
        engine.observe(action[1], action[2], threshold=0.5)
        return None
    if kind == "remove":
        engine.remove(action[1])
        return None
    if kind == "query_target":
        return engine.disclosing_sources(action[1])
    # query_fp and noise
    return engine.disclosing_sources(fingerprint=engine.fingerprint(action[1]))


def _assert_reports_identical(actual, expected, context):
    assert actual.target_id == expected.target_id, context
    assert actual.candidates_checked == expected.candidates_checked, context
    assert len(actual.sources) == len(expected.sources), context
    for got, want in zip(actual.sources, expected.sources):
        assert got.segment_id == want.segment_id, context
        assert got.score == want.score, context
        assert got.threshold == want.threshold, context
        assert got.matched_hashes == want.matched_hashes, context
        assert got.kind == want.kind, context
        assert got.doc_id == want.doc_id, context


@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_engine_matches_serial_replay(seed):
    plan = _build_plan(seed)
    shared = DisclosureEngine(CONFIG)
    outputs = {}  # (round, tid) -> report, for checked queries
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def worker(tid: int) -> None:
        try:
            for r, actions in enumerate(plan):
                barrier.wait(timeout=30)
                action = actions[tid]
                report = _apply(shared, action)
                if action[0] in ("query_fp", "query_target"):
                    outputs[(r, tid)] = report
                elif action[0] == "noise" and report is not None:
                    # Races the round's writer: check structure only.
                    assert set(report.source_ids()) <= set(SEGMENT_POOL)
                    for source in report.sources:
                        assert 0.0 < source.score <= 1.0
                barrier.wait(timeout=30)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((tid, exc))
            barrier.abort()

    threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert not any(t.is_alive() for t in threads), "worker deadlocked"

    # The shared engine's indexes survived 8-thread contention intact.
    shared.hash_db.check_invariants()

    # Replay the linearised op log on a serial reference engine. Write
    # rounds contribute exactly one mutation each, so round order *is*
    # the linearisation; query-round reports must match field-for-field.
    serial = DisclosureEngine(CONFIG)
    for r, actions in enumerate(plan):
        kinds = {a[0] for a in actions.values()}
        if "observe" in kinds or "remove" in kinds:
            for action in actions.values():
                if action[0] in ("observe", "remove"):
                    _apply(serial, action)
        else:
            for tid in range(N_THREADS):
                expected = _apply(serial, actions[tid])
                _assert_reports_identical(
                    outputs[(r, tid)], expected, f"seed={seed} round={r} tid={tid}"
                )

    # End-state equivalence: same segments, same hash table, same owners,
    # and field-identical reports for every live segment.
    assert sorted(shared.segment_db.ids()) == sorted(serial.segment_db.ids())
    assert set(shared.hash_db.hashes()) == set(serial.hash_db.hashes())
    for h in serial.hash_db.hashes():
        assert shared.hash_db.oldest_owner(h) == serial.hash_db.oldest_owner(h)
    for seg in serial.segment_db.ids():
        _assert_reports_identical(
            shared.disclosing_sources(seg),
            serial.disclosing_sources(seg),
            f"seed={seed} final segment={seg}",
        )

    # Lock accounting is exact: one write acquisition per mutation, one
    # read acquisition per query (checked, noise, and final sweep).
    n_writes = sum(
        1
        for actions in plan
        for a in actions.values()
        if a[0] in ("observe", "remove")
    )
    n_queries = sum(
        1
        for actions in plan
        for a in actions.values()
        if a[0] in ("query_fp", "query_target", "noise")
    )
    stats = shared.lock.stats()
    assert stats["write_acquisitions"] == n_writes
    assert stats["read_acquisitions"] == n_queries + len(serial.segment_db.ids())
