"""Randomised workflow soak test with a global security invariant.

A seeded random mixture of the workflows the paper describes — creating
sensitive text in internal services, pasting it (whole, partial, or
edited) into the untrusted Docs service, declassifying some of it — is
driven through the full stack. Afterwards the untrusted backend is
audited with an independent reference engine:

    Every stored paragraph that discloses an internal secret must be
    covered by a suppression event in the audit log.

This is the system's end-to-end guarantee, checked under churn rather
than in a hand-picked scenario.
"""

import os
import random

import pytest

from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.disclosure import DisclosureEngine
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin import PluginMode

from conftest import EnterpriseFixture

N_STEPS = 60

#: Seeds for the randomised soak, overridable so the CI stress job can
#: widen coverage without a code change (mirrors ``BF_CONC_SEEDS``).
SOAK_SEEDS = [
    s.strip()
    for s in os.environ.get("BF_SOAK_SEEDS", "soak-enforce,soak-alt").split(",")
    if s.strip()
]


def run_soak(mode: PluginMode, seed: str):
    e = EnterpriseFixture(mode=mode)
    rng = random.Random(seed)
    synth_internal = TextSynthesizer("mysql", rng)
    synth_public = TextSynthesizer("fiction", rng)
    editor_model = EditModel(synth_internal, rng)

    secrets = []  # texts that carry internal tags
    editors = []

    for step in range(N_STEPS):
        action = rng.randrange(6)
        if action == 0:
            # New sensitive page in an internal service, viewed so the
            # plug-in labels it.
            secret = synth_internal.paragraph(4, 6)
            secrets.append(secret)
            if rng.random() < 0.5:
                e.wiki.save_page(f"Page{step}", secret)
                e.browser.open(e.wiki.page_url(f"Page{step}"))
            else:
                e.itool.add_note(f"cand-{step}", secret)
                e.browser.open(e.itool.candidate_url(f"cand-{step}"))
        elif action == 1 and secrets:
            # Paste a secret (sometimes lightly edited) into Docs.
            editor = e.docs.open_editor(e.browser.new_tab())
            editors.append(editor)
            text = rng.choice(secrets)
            if rng.random() < 0.3:
                text = editor_model.substitute_words(text, 0.05)
            editor.paste(editor.new_paragraph(), text)
        elif action == 2:
            # Paste harmless public text into Docs.
            editor = e.docs.open_editor(e.browser.new_tab())
            editors.append(editor)
            editor.paste(editor.new_paragraph(), synth_public.paragraph(3, 5))
        elif action == 3 and secrets:
            # Type a prefix of a secret character by character.
            editor = e.docs.open_editor(e.browser.new_tab())
            editors.append(editor)
            secret = rng.choice(secrets)
            editor.type_text(editor.new_paragraph(), secret[: rng.randrange(20, len(secret))])
        elif action == 4 and e.plugin.warnings and rng.random() < 0.4:
            # A user declassifies the most recent warning and retries.
            warning = e.plugin.warnings[-1]
            for tag in warning.offending:
                e.plugin.suppress(
                    warning.segment_id, tag, f"user-{step}", "business need"
                )
            # Retry: paste the same content again into a fresh doc.
            if secrets:
                editor = e.docs.open_editor(e.browser.new_tab())
                editors.append(editor)
                editor.paste(editor.new_paragraph(), rng.choice(secrets))
        else:
            # Benign wiki edit of public text.
            e.wiki.edit(
                e.browser.new_tab(), f"Public{step}", synth_public.paragraph(3, 5)
            )
    return e, secrets


def audit_untrusted_backend(e, secrets):
    """Returns (leaked_segments, covered_by_audit).

    A stored paragraph counts as leaked when either check fires:

    * self-consistency — the live model itself would refuse to upload
      that text to the Docs service now; or
    * absolute — an independent reference engine holding only the
      secrets reports disclosure well above the threshold (0.8). The
      margin matters: in the live system other segments legitimately
      own some of a secret's hashes (shared vocabulary, committed
      partial copies), so live scores sit slightly below an isolated
      reference's; scores just under the threshold are the correct
      §4.3 semantics, not leaks.
    """
    reference = DisclosureEngine(TINY_CONFIG)
    for i, secret in enumerate(secrets):
        reference.observe(f"secret-{i}", secret, threshold=0.8)
    leaked = []
    for doc in e.docs.backend.all_documents():
        for par_id, text in doc.paragraphs:
            segment_id = e.plugin.qualify(e.docs.origin, par_id)
            decision = e.model.check_upload(
                e.docs.origin, f"audit:{par_id}", [(f"audit:{par_id}#p0", text)]
            )
            report = reference.disclosing_sources(
                fingerprint=reference.fingerprint(text)
            )
            if not decision.allowed or report.disclosing:
                leaked.append(segment_id)
    audited_segments = {event.segment_id for event in e.model.audit}
    return leaked, audited_segments


class TestEnforceSoak:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_invariant_no_unaudited_leak(self, seed):
        e, secrets = run_soak(PluginMode.ENFORCE, seed=seed)
        leaked, audited = audit_untrusted_backend(e, secrets)
        for segment_id in leaked:
            assert segment_id in audited, (
                f"{segment_id} stores sensitive text without a "
                f"declassification record"
            )

    def test_some_activity_happened(self):
        e, secrets = run_soak(PluginMode.ENFORCE, seed=SOAK_SEEDS[0])
        assert secrets, "soak generated no sensitive content"
        assert e.plugin.warnings, "soak triggered no policy decisions"
        assert e.docs.backend.all_documents(), "soak reached no docs"


class TestEncryptSoak:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_invariant_no_unaudited_leak(self, seed):
        """ENCRYPT mode stores ciphertext, never plaintext secrets."""
        e, secrets = run_soak(PluginMode.ENCRYPT, seed=seed)
        leaked, audited = audit_untrusted_backend(e, secrets)
        for segment_id in leaked:
            assert segment_id in audited, (
                f"{segment_id} stores sensitive text without a "
                f"declassification record"
            )


class TestAdvisorySoak:
    def test_leaks_delivered_but_warned(self):
        """Advisory mode lets everything through but never silently."""
        e, secrets = run_soak(PluginMode.ADVISORY, seed="soak-advisory")
        leaked, _audited = audit_untrusted_backend(e, secrets)
        if leaked:
            warned_docs = {
                w.segment_id for w in e.plugin.warnings if w.proceeded
            }
            # Every leaked segment was the subject of a warning.
            for segment_id in leaked:
                assert segment_id in warned_docs
