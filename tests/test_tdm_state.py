"""Tests for whole-model persistence (restart survival)."""

import pytest

from repro.errors import PolicyError
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.crypto import UploadCipher
from repro.tdm import Label, PolicyStore, Tag, TextDisclosureModel
from repro.tdm.model import Suppression
from repro.tdm.state import load_model, model_from_dict, model_to_dict, save_model

from conftest import OTHER_TEXT, SECRET_TEXT

ITOOL = "https://itool.example"
WIKI = "https://wiki.example"
DOCS = "https://docs.example"


@pytest.fixture
def model():
    policies = PolicyStore()
    policies.register_service(
        ITOOL, privilege=Label.of("ti"), confidentiality=Label.of("ti")
    )
    policies.register_service(
        WIKI, privilege=Label.of("tw"), confidentiality=Label.of("tw")
    )
    policies.register_service(DOCS)
    model = TextDisclosureModel(policies, TINY_CONFIG)
    model.observe(ITOOL, "docA", [("docA#p0", SECRET_TEXT)])
    model.observe(WIKI, "docW", [("docW#p0", OTHER_TEXT)])
    # Exercise suppression so the audit log has content.
    suppression = Suppression.of("ti", "alice", "approved")
    decision = model.check_upload(
        WIKI, "docB", [("docB#p0", SECRET_TEXT)],
        suppressions={"docB#p0": [suppression], "docB": [suppression]},
    )
    model.commit_upload(WIKI, "docB", [("docB#p0", SECRET_TEXT)], decision)
    return model


class TestModelRoundtrip:
    def test_labels_restored(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.label_of("docA#p0") == model.label_of("docA#p0")
        # Suppressed tags survive — the accountability anchor.
        assert Tag("ti") in restored.label_of("docB#p0").suppressed

    def test_decisions_identical(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        before = model.check_upload(DOCS, "probe", [("probe#p0", SECRET_TEXT)])
        after = restored.check_upload(DOCS, "probe", [("probe#p0", SECRET_TEXT)])
        assert before.allowed == after.allowed
        assert [v.segment_id for v in before.violations] == [
            v.segment_id for v in after.violations
        ]

    def test_audit_restored(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        events = restored.audit.by_user("alice")
        assert len(events) == len(model.audit.by_user("alice"))
        assert events[0].justification == "approved"

    def test_locations_restored(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.locations_of("docA#p0") == model.locations_of("docA#p0")

    def test_policies_restored(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.policies.get(ITOOL).privilege == Label.of("ti")

    def test_thresholds_restored(self, tmp_path):
        policies = PolicyStore()
        model = TextDisclosureModel(
            policies, TINY_CONFIG, paragraph_threshold=0.3, document_threshold=0.7
        )
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.tracker.paragraph_threshold == 0.3
        assert restored.tracker.document_threshold == 0.7

    def test_encrypted_state(self, model, tmp_path):
        path = tmp_path / "model.enc"
        cipher = UploadCipher("disk-key")
        save_model(model, path, cipher=cipher)
        assert "docA" not in path.read_text()
        restored = load_model(path, cipher=cipher)
        assert restored.label_of("docA#p0") == model.label_of("docA#p0")

    def test_encrypted_without_cipher_rejected(self, model, tmp_path):
        path = tmp_path / "model.enc"
        save_model(model, path, cipher=UploadCipher("disk-key"))
        with pytest.raises(PolicyError):
            load_model(path)

    def test_unsupported_version_rejected(self, model):
        data = model_to_dict(model)
        data["version"] = 42
        with pytest.raises(PolicyError):
            model_from_dict(data)


class TestRestartScenario:
    def test_restart_mid_workflow(self, model, tmp_path):
        """Save, 'restart', and continue: a violation that would fire
        before the restart still fires after it."""
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        decision = restored.check_upload(
            DOCS, "leak", [("leak#p0", SECRET_TEXT)]
        )
        assert not decision.allowed
        # And new observations keep composing with restored state.
        restored.observe(WIKI, "docNew", [("docNew#p0", SECRET_TEXT)])
        label = restored.label_of("docNew#p0")
        assert Tag("tw") in label.explicit
        assert Tag("ti") in label.implicit
