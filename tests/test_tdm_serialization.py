"""Tests for policy (de)serialisation."""

import pytest

from repro.errors import PolicyError
from repro.tdm import Label, PolicyStore, Tag
from repro.tdm.serialization import (
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_policy,
)


@pytest.fixture
def store():
    store = PolicyStore()
    store.allocate_tag("tn", owner="alice")
    store.register_service(
        "https://itool.example",
        privilege=Label.of("ti"),
        confidentiality=Label.of("ti"),
        display_name="Interview Tool",
    )
    store.register_service(
        "https://wiki.example",
        privilege=Label.of("tw", "tn"),
        confidentiality=Label.of("tw"),
    )
    store.register_service("https://docs.example")
    return store


class TestRoundtrip:
    def test_services_restored(self, store, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(store, path)
        restored = load_policy(path)
        assert restored.services() == store.services()
        for service_id in store.services():
            original = store.get(service_id)
            recovered = restored.get(service_id)
            assert recovered.privilege == original.privilege
            assert recovered.confidentiality == original.confidentiality
            assert recovered.display_name == original.display_name

    def test_tag_ownership_restored(self, store, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(store, path)
        restored = load_policy(path)
        assert restored.tag("tn").owner == "alice"
        # Ownership enforcement still applies after the round trip.
        with pytest.raises(PolicyError):
            restored.grant_privilege("https://docs.example", "tn", user="mallory")

    def test_dict_roundtrip_stable(self, store):
        data = policy_to_dict(store)
        assert policy_to_dict(policy_from_dict(data)) == data


class TestValidation:
    def test_unknown_version_rejected(self):
        with pytest.raises(PolicyError):
            policy_from_dict({"version": 999})

    def test_undeclared_tag_rejected(self):
        data = {
            "version": 1,
            "tags": [],
            "services": [
                {"id": "https://x.example", "privilege": ["ghost"],
                 "confidentiality": []}
            ],
        }
        with pytest.raises(PolicyError):
            policy_from_dict(data)

    def test_empty_policy(self):
        store = policy_from_dict({"version": 1, "tags": [], "services": []})
        assert len(store) == 0
