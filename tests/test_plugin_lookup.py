"""Tests for the policy lookup module (caching behaviour)."""

import pytest

from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.lookup import PolicyLookup
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.tdm.model import Suppression

from conftest import OTHER_TEXT, SECRET_TEXT

SRC = "https://src.example.com"
DST = "https://dst.example.com"


@pytest.fixture
def lookup():
    policies = PolicyStore()
    policies.register_service(SRC, privilege=Label.of("s"), confidentiality=Label.of("s"))
    policies.register_service(DST)
    model = TextDisclosureModel(policies, TINY_CONFIG)
    model.observe(SRC, "doc-src", [("doc-src#p0", SECRET_TEXT)])
    return PolicyLookup(model)


class TestLookup:
    def test_detects_violation(self, lookup):
        decision = lookup.lookup(DST, "d", [("d#p0", SECRET_TEXT)])
        assert not decision.allowed

    def test_allows_clean_text(self, lookup):
        decision = lookup.lookup(DST, "d", [("d#p0", OTHER_TEXT)])
        assert decision.allowed

    def test_repeated_lookup_hits_cache(self, lookup):
        segments = [("d#p0", SECRET_TEXT)]
        first = lookup.lookup(DST, "d", segments)
        second = lookup.lookup(DST, "d", segments)
        assert second is first
        assert lookup.cache.hits == 1

    def test_text_change_misses_cache(self, lookup):
        lookup.lookup(DST, "d", [("d#p0", SECRET_TEXT)])
        lookup.lookup(DST, "d", [("d#p0", OTHER_TEXT)])
        assert lookup.cache.hits == 0
        assert lookup.cache.misses == 2

    def test_fingerprint_stable_keystroke_hits_cache(self, lookup):
        """A trailing keystroke that doesn't change the winnowed hashes
        reuses the previous decision (paper §6.2)."""
        engine = lookup.model.tracker.paragraphs
        base = SECRET_TEXT
        hits_before = lookup.cache.hits
        lookup.lookup(DST, "d", [("d#p0", base)])
        # Find a one-char extension that keeps the fingerprint identical.
        fp = engine.fingerprinter.fingerprint(base)
        for ch in "abcdefghij":
            if engine.fingerprinter.fingerprint(base + ch).hashes == fp.hashes:
                lookup.lookup(DST, "d", [("d#p0", base + ch)])
                assert lookup.cache.hits == hits_before + 1
                return
        pytest.skip("no fingerprint-stable keystroke found for this text")

    def test_new_observation_invalidates(self, lookup):
        segments = [("d#p0", OTHER_TEXT)]
        first = lookup.lookup(DST, "d", segments)
        lookup.model.observe(SRC, "doc2", [("doc2#p0", OTHER_TEXT)])
        second = lookup.lookup(DST, "d", segments)
        assert second is not first
        assert not second.allowed  # now a known source exists

    def test_label_change_invalidates(self, lookup):
        """A label-store mutation with no fingerprint delta must not be
        served a stale verdict (the §13 label-epoch key component).

        Regression: under sharded per-segment epochs this was the only
        verdict dependency not covered by the disclosure-database
        epochs, and the churn fleet diverged between tiers through it.
        """
        segments = [("d#p0", SECRET_TEXT)]
        first = lookup.lookup(DST, "d", segments)
        assert not first.allowed
        # Declassify the source outright: wipe its confidential label.
        from repro.tdm.labels import SegmentLabel

        lookup.model.set_label("doc-src#p0", SegmentLabel())
        lookup.model.set_label("doc-src", SegmentLabel())
        second = lookup.lookup(DST, "d", segments)
        assert second is not first
        assert second.allowed

    def test_tag_addition_invalidates(self, lookup):
        """add_tag_to_segment flips a cached allow to a block."""
        segments = [("d#p0", OTHER_TEXT)]
        lookup.model.observe(SRC, "doc2", [("doc2#p0", OTHER_TEXT)])
        first = lookup.lookup(DST, "d", segments)
        tag = lookup.model.allocate_custom_tag("project-x", owner="alice")
        lookup.model.add_tag_to_segment("doc2#p0", tag)
        # The tag write changed no fingerprint, but the key must churn:
        # a cached decision would be `second is first`.
        second = lookup.lookup(DST, "d", segments)
        assert second is not first
        assert tag in second.violations[0].label.full().tags

    def test_reobserving_public_text_keeps_cache_warm(self, lookup):
        """Label writes that don't change any label must not bump the
        epoch: re-observing public text leaves cached verdicts valid."""
        segments = [("d#p0", OTHER_TEXT)]
        lookup.model.observe(DST, "pub", [("pub#p0", OTHER_TEXT)])
        first = lookup.lookup(DST, "d", segments)
        epoch = lookup.model.label_epoch()
        lookup.model.observe(DST, "pub", [("pub#p0", OTHER_TEXT)])
        assert lookup.model.label_epoch() == epoch

    def test_suppressed_lookup_not_cached(self, lookup):
        suppression = Suppression.of("s", "alice", "approved")
        segments = [("d#p0", SECRET_TEXT)]
        decision = lookup.lookup(
            DST, "d", segments, suppressions={"d#p0": [suppression], "d": [suppression]}
        )
        assert decision.allowed
        # Without the suppression the cached path must not return the
        # declassified decision.
        decision2 = lookup.lookup(DST, "d", segments)
        assert not decision2.allowed


class TestStats:
    def test_combines_cache_and_engine_counters(self, lookup):
        segments = [("d#p0", SECRET_TEXT)]
        lookup.lookup(DST, "d", segments)
        lookup.lookup(DST, "d", segments)
        stats = lookup.stats()
        assert stats["decision_cache_hits"] == 1
        assert stats["decision_cache_misses"] == 1
        assert stats["decision_cache_hit_rate"] == 0.5
        # Engine counters sum both granularities and reflect the sweep.
        assert stats["engine_segments"] >= 1
        assert stats["engine_queries"] >= 1
        assert stats["engine_candidates_swept"] >= 1
        assert "engine_ownership_changes" in stats

    def test_surfaces_evictions_and_lock_counters(self):
        from repro.plugin.cache import DecisionCache

        policies = PolicyStore()
        policies.register_service(DST)
        model = TextDisclosureModel(policies, TINY_CONFIG)
        lookup = PolicyLookup(model, cache=DecisionCache(capacity=1))
        lookup.lookup(DST, "d", [("d#p0", SECRET_TEXT)])
        lookup.lookup(DST, "d", [("d#p0", OTHER_TEXT)])
        stats = lookup.stats()
        # Two distinct fingerprints through a 1-entry cache: the second
        # put must have dropped the first for capacity.
        assert stats["decision_cache_evictions"] == 1
        assert stats["decision_cache_misses"] == 2
        # The tracker's reader-writer lock counters ride along (nested
        # reentrant acquisitions each count, so >= one per lookup).
        assert stats["lock_read_acquisitions"] >= 2
        assert stats["lock_write_acquisitions"] == 0
