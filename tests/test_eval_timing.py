"""Tests for the keystroke workload simulation."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.eval.timing import edit_toward, keystroke_states

words = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=0,
    max_size=12,
)


class TestKeystrokeStates:
    def test_progressive_growth(self):
        states = list(keystroke_states("abc"))
        assert states == ["a", "ab", "abc"]

    def test_with_start(self):
        states = list(keystroke_states("xy", start="base"))
        assert states == ["basex", "basexy"]

    def test_empty_text(self):
        assert list(keystroke_states("")) == []


class TestEditToward:
    def test_converges_to_original(self):
        original = "alpha beta gamma delta"
        modified = "alpha CHANGED gamma WRONG"
        states = list(edit_toward(modified, original))
        assert states[-1] == original

    def test_word_at_a_time(self):
        original = "one two three"
        modified = "one X three"
        states = list(edit_toward(modified, original))
        assert states == ["one two three"]

    def test_handles_length_mismatch_longer(self):
        original = "a b"
        modified = "a b c d"
        states = list(edit_toward(modified, original))
        assert states[-1] == original

    def test_handles_length_mismatch_shorter(self):
        original = "a b c d"
        modified = "a b"
        states = list(edit_toward(modified, original))
        assert states[-1] == original

    def test_identical_no_steps(self):
        assert list(edit_toward("same text", "same text")) == []


class TestEditTowardProperties:
    """Word-level editing invariants for arbitrary word sequences."""

    @given(words, words)
    def test_final_state_is_original(self, modified, original):
        states = list(edit_toward(" ".join(modified), " ".join(original)))
        final = states[-1] if states else " ".join(modified)
        assert final == " ".join(original)

    @given(words, words)
    def test_each_step_changes_one_word_or_length_by_one(
        self, modified, original
    ):
        previous = modified
        for state in edit_toward(" ".join(modified), " ".join(original)):
            current = state.split()
            if len(current) == len(previous):
                changed = sum(
                    1 for a, b in zip(previous, current) if a != b
                )
                assert changed == 1
            else:
                assert abs(len(current) - len(previous)) == 1
                shorter, longer = sorted(
                    (current, previous), key=len
                )
                assert longer[: len(shorter)] == shorter
            previous = current

    @given(words)
    def test_equal_inputs_yield_nothing(self, sequence):
        text = " ".join(sequence)
        assert list(edit_toward(text, text)) == []
