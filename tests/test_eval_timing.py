"""Tests for the keystroke workload simulation."""

from repro.eval.timing import edit_toward, keystroke_states


class TestKeystrokeStates:
    def test_progressive_growth(self):
        states = list(keystroke_states("abc"))
        assert states == ["a", "ab", "abc"]

    def test_with_start(self):
        states = list(keystroke_states("xy", start="base"))
        assert states == ["basex", "basexy"]

    def test_empty_text(self):
        assert list(keystroke_states("")) == []


class TestEditToward:
    def test_converges_to_original(self):
        original = "alpha beta gamma delta"
        modified = "alpha CHANGED gamma WRONG"
        states = list(edit_toward(modified, original))
        assert states[-1] == original

    def test_word_at_a_time(self):
        original = "one two three"
        modified = "one X three"
        states = list(edit_toward(modified, original))
        assert states == ["one two three"]

    def test_handles_length_mismatch_longer(self):
        original = "a b"
        modified = "a b c d"
        states = list(edit_toward(modified, original))
        assert states[-1] == original

    def test_handles_length_mismatch_shorter(self):
        original = "a b c d"
        modified = "a b"
        states = list(edit_toward(modified, original))
        assert states[-1] == original

    def test_identical_no_steps(self):
        assert list(edit_toward("same text", "same text")) == []
