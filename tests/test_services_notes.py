"""Tests for the Notes service and adapter-based plug-in coverage."""

import pytest

from repro.browser import Browser
from repro.browser.http import HttpRequest
from repro.services import Network
from repro.services.notes import NotesService

from conftest import SECRET_TEXT, THIRD_TEXT, EnterpriseFixture


@pytest.fixture
def setup():
    network = Network()
    notes = NotesService()
    network.register(notes)
    return Browser(network), notes


class TestNotesService:
    def test_write_note(self, setup):
        browser, notes = setup
        view = notes.open_notebook(browser.new_tab(), "work")
        note = view.new_note("remember to review the design document")
        assert notes.notes_in("work") == ["remember to review the design document"]
        assert note.text_content() == "remember to review the design document"

    def test_note_update_replaces(self, setup):
        browser, notes = setup
        view = notes.open_notebook(browser.new_tab(), "work")
        note = view.new_note("first")
        view.write(note, "second")
        assert notes.notes_in("work") == ["second"]

    def test_notebooks_independent(self, setup):
        browser, notes = setup
        tab = browser.new_tab()
        notes.open_notebook(tab, "a").new_note("in a")
        notes.open_notebook(tab, "b").new_note("in b")
        assert notes.notes_in("a") == ["in a"]
        assert notes.notes_in("b") == ["in b"]

    def test_reopen_renders_notes(self, setup):
        browser, notes = setup
        notes.open_notebook(browser.new_tab(), "work").new_note("persisted")
        view = notes.open_notebook(browser.new_tab(), "work")
        assert [el.text_content() for el in view.note_elements()] == ["persisted"]

    def test_malformed_save_rejected(self, setup):
        _browser, notes = setup
        response = notes.handle_request(
            HttpRequest("POST", notes.url("/note/save"), body="oops")
        )
        assert response.status == 400

    def test_missing_fields_rejected(self, setup):
        _browser, notes = setup
        response = notes.handle_request(
            HttpRequest("POST", notes.url("/note/save"), body='{"notebook": "x"}')
        )
        assert response.status == 400


class TestPluginCoversNotes:
    """The second AJAX service is protected via its adapter alone."""

    @pytest.fixture
    def env(self):
        e = EnterpriseFixture()
        notes = NotesService()
        e.network.register(notes)
        e.policies.register_service(notes.origin)  # untrusted external
        return e, notes

    def test_sensitive_note_blocked(self, env):
        e, notes = env
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        view = notes.open_notebook(e.browser.new_tab(), "personal")
        note = view.new_note()
        assert not view.write(note, SECRET_TEXT)
        assert notes.notes_in("personal") == []
        assert e.plugin.warnings

    def test_clean_note_allowed(self, env):
        e, notes = env
        view = notes.open_notebook(e.browser.new_tab(), "personal")
        view.new_note(THIRD_TEXT)
        assert notes.notes_in("personal") == [THIRD_TEXT]

    def test_note_content_ingested_and_labelled(self, env):
        """Notes rendered on page load get the service's Lc — here
        empty, so copying notes elsewhere stays unrestricted."""
        e, notes = env
        notes.open_notebook(e.browser.new_tab(), "shared").new_note(THIRD_TEXT)
        e.browser.open(notes.notebook_url("shared"))
        qualified = e.plugin.qualify(notes.origin, "nb:shared")
        assert e.model.tracker.documents.segment_db.find(qualified) is not None

    def test_note_to_note_copy_allowed(self, env):
        e, notes = env
        view1 = notes.open_notebook(e.browser.new_tab(), "one")
        view1.new_note(THIRD_TEXT)
        view2 = notes.open_notebook(e.browser.new_tab(), "two")
        note = view2.new_note()
        assert view2.write(note, THIRD_TEXT)
