"""Determinism and audit-invariant tests for the fleet simulator.

The property under test is what makes fleet failures reproducible: the
schedule is a pure function of (seed, config), and the audit outcome —
which paragraphs disclose, which are covered by suppression events — is
a pure function of the schedule, independent of worker count, shard
count, and wall-clock timing.
"""

import dataclasses

import pytest

from repro.eval.fleet import run_fleet, smoke_config
from repro.eval.workload import generate_schedule

SEED = 7_031


@pytest.fixture(scope="module")
def schedule():
    return generate_schedule(smoke_config(SEED))


@pytest.fixture(scope="module")
def baseline(schedule):
    return run_fleet(schedule, workers=1)


class TestFleetDeterminism:
    def test_schedule_digest_reproducible(self, schedule):
        again = generate_schedule(smoke_config(SEED))
        assert again.digest == schedule.digest
        assert again.ops == schedule.ops

    @pytest.mark.parametrize("workers", [2, 4, 7])
    def test_audit_outcome_independent_of_worker_count(
        self, schedule, baseline, workers
    ):
        result = run_fleet(schedule, workers=workers)
        assert result.schedule_digest == baseline.schedule_digest
        assert dataclasses.asdict(result.audit) == dataclasses.asdict(
            baseline.audit
        )
        assert result.decisions == baseline.decisions
        assert result.blocked_ops == baseline.blocked_ops
        assert result.declassify_noops == baseline.declassify_noops

    def test_sharded_tier_matches_single_tier(self, schedule, baseline):
        sharded = run_fleet(schedule, workers=4, n_shards=4)
        assert dataclasses.asdict(sharded.audit) == dataclasses.asdict(
            baseline.audit
        )
        assert sharded.decisions == baseline.decisions


class TestFleetAuditInvariant:
    def test_audit_passes_with_real_coverage(self, baseline):
        audit = baseline.audit
        assert audit.ok
        assert audit.uncovered == ()
        # The invariant must not hold vacuously: this workload stores
        # declassified secrets, blocks verbatim pastes, and audits a
        # meaningful number of paragraphs.
        assert audit.leaked, "no declassified disclosure reached a backend"
        assert audit.suppression_events >= len(audit.leaked)
        assert audit.paragraphs_audited > 0
        assert baseline.blocked_ops > 0

    def test_every_op_executed(self, schedule, baseline):
        assert baseline.ops == len(schedule.ops)
        assert baseline.sessions == schedule.sessions
        assert baseline.decisions > baseline.ops
