"""Unit tests for hash-range sharding (DESIGN.md §11).

The sharded hash database must behave exactly like one
:class:`~repro.disclosure.store.HashDatabase` — the plain database *is*
the oracle here: every routed call and every scatter/gather sweep is
compared against the same operations applied unsharded. The sharding-
specific machinery (routing, per-shard locks and metrics, per-shard
fault injectors) is tested on top.
"""

from __future__ import annotations

import random

import pytest

from repro.disclosure import HashDatabase, ShardedHashDatabase, partition, shard_of
from repro.disclosure.sharding import ShardedDisclosureEngine
from repro.errors import DisclosureError, ShardDegraded
from repro.fingerprint.config import FingerprintConfig
from repro.util.faults import Fault, FaultInjector

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)
HASH_BITS = 32


def unsharded_sweep(db: HashDatabase, hashes, authoritative: bool):
    """The engine's sweep accumulation, run directly on a plain DB."""
    matched = {}
    for h in hashes:
        if authoritative:
            owner = db.oldest_owner(h)
            owners = () if owner is None else (owner,)
        else:
            owners = db.observers(h)
        for owner in owners:
            matched.setdefault(owner, []).append(h)
    return matched


def canon(matched):
    return {owner: sorted(hs) for owner, hs in matched.items()}


class TestShardKey:
    def test_shard_of_in_range_and_deterministic(self):
        rng = random.Random(7)
        for n in (1, 2, 3, 4, 8, 16):
            for _ in range(200):
                h = rng.randrange(1 << HASH_BITS)
                index = shard_of(h, n, HASH_BITS)
                assert 0 <= index < n
                assert index == shard_of(h, n, HASH_BITS)

    def test_partition_is_a_complete_disjoint_cover(self):
        rng = random.Random(11)
        hashes = [rng.randrange(1 << HASH_BITS) for _ in range(500)]
        groups = partition(hashes, 8, HASH_BITS)
        assert [i for i, _g in groups] == sorted({i for i, _g in groups})
        flat = [h for _i, group in groups for h in group]
        assert sorted(flat) == sorted(hashes)  # nothing lost or invented
        for index, group in groups:
            assert all(shard_of(h, 8, HASH_BITS) == index for h in group)

    def test_low_magnitude_hashes_still_balance(self):
        # Winnowing stores window *minima*, so real hash values skew
        # small; the Fibonacci pre-mix must spread even a worst-case
        # consecutive-integer range (raw range-partitioning would put
        # all of these on shard 0).
        counts = [0] * 8
        for h in range(4096):
            counts[shard_of(h, 8, HASH_BITS)] += 1
        assert min(counts) > 0
        assert max(counts) < 2 * (4096 // 8)

    def test_single_shard_routes_everything_to_zero(self):
        for h in (0, 1, 2**31, 2**32 - 1):
            assert shard_of(h, 1, HASH_BITS) == 0


class TestShardedHashDatabaseOracle:
    """Random op sequences: sharded DB ≡ plain DB, at several widths."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_random_ops_match_plain_database(self, n_shards):
        rng = random.Random(n_shards * 1000 + 13)
        plain = HashDatabase()
        sharded = ShardedHashDatabase(n_shards, hash_bits=HASH_BITS)
        segments = [f"seg-{i}" for i in range(6)]
        pool = [rng.randrange(1 << HASH_BITS) for _ in range(80)]

        for step in range(400):
            op = rng.random()
            if op < 0.6:
                h, seg, ts = rng.choice(pool), rng.choice(segments), float(step)
                assert sharded.record(h, seg, ts) == plain.record(h, seg, ts)
            elif op < 0.85:
                h, seg = rng.choice(pool), rng.choice(segments)
                assert sharded.remove_observation(h, seg) == (
                    plain.remove_observation(h, seg)
                )
            else:
                seg = rng.choice(segments)
                assert sharded.discard_segment(seg) == plain.discard_segment(seg)

        assert len(sharded) == len(plain)
        assert sorted(sharded.hashes()) == sorted(plain.hashes())
        for h in pool:
            assert (h in sharded) == (h in plain)
            assert sharded.oldest_owner(h) == plain.oldest_owner(h)
            assert sharded.recompute_oldest_owner(h) == (
                plain.recompute_oldest_owner(h)
            )
            assert sharded.owners(h) == plain.owners(h)
            assert sorted(sharded.observers(h)) == sorted(plain.observers(h))
        for seg in segments:
            assert sharded.hashes_of(seg) == plain.hashes_of(seg)
            assert sharded.owned_hashes(seg) == plain.owned_hashes(seg)
            assert sharded.first_seen(pool[0], seg) == plain.first_seen(
                pool[0], seg
            )
        assert sharded.ownership_changes == plain.ownership_changes
        sharded.check_invariants()
        plain.check_invariants()

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("authoritative", [True, False])
    def test_sweep_merge_equals_unsharded_sweep(self, n_shards, authoritative):
        rng = random.Random(n_shards * 7 + int(authoritative))
        plain = HashDatabase()
        sharded = ShardedHashDatabase(n_shards, hash_bits=HASH_BITS)
        pool = [rng.randrange(1 << HASH_BITS) for _ in range(60)]
        for step in range(200):
            h, seg, ts = (
                rng.choice(pool),
                f"seg-{rng.randrange(5)}",
                float(step % 9),
            )
            plain.record(h, seg, ts)
            sharded.record(h, seg, ts)
        for _ in range(20):
            query = frozenset(rng.sample(pool, rng.randint(0, 30)))
            expected = unsharded_sweep(plain, query, authoritative)
            got = sharded.sweep(query, authoritative=authoritative)
            assert canon(got) == canon(expected)

    def test_record_fingerprint_and_withdraw_batch_paths(self):
        plain = HashDatabase()
        sharded = ShardedHashDatabase(4, hash_bits=HASH_BITS)
        old = frozenset(range(0, 40))
        new = frozenset(range(20, 60))
        for h in old:
            plain.record(h, "a", 1.0)
        assert sharded.record_fingerprint("a", old, 1.0) is True
        assert sharded.record_fingerprint("a", old, 2.0) is False  # no-op re-observe
        for h in new:
            plain.record(h, "a", 3.0)
        sharded.record_fingerprint("a", new, 3.0)
        for h in old - new:
            plain.remove_observation(h, "a")
        assert sharded.withdraw("a", old - new) is True
        assert sharded.withdraw("a", old - new) is False
        assert sharded.hashes_of("a") == plain.hashes_of("a") == set(new)
        sharded.check_invariants()

    def test_empty_sweep_and_constructor_validation(self):
        sharded = ShardedHashDatabase(4)
        assert sharded.sweep(frozenset()) == {}
        with pytest.raises(DisclosureError):
            ShardedHashDatabase(0)
        with pytest.raises(DisclosureError):
            ShardedHashDatabase(2, hash_bits=0)


class TestShardLocksAndMetrics:
    def test_mutations_lock_only_the_shards_they_touch(self):
        sharded = ShardedHashDatabase(4, hash_bits=HASH_BITS)
        # Find a hash routed to shard 0 and one routed to shard 3.
        h0 = next(h for h in range(10_000) if sharded.shard_of(h) == 0)
        h3 = next(h for h in range(10_000) if sharded.shard_of(h) == 3)
        sharded.record(h0, "a", 1.0)
        sharded.record(h3, "b", 1.0)
        writes = [sharded.locks[i].stats()["write_acquisitions"] for i in range(4)]
        assert writes == [1, 0, 0, 1]
        sharded.sweep(frozenset({h0}))
        reads = [sharded.locks[i].stats()["read_acquisitions"] for i in range(4)]
        assert reads[0] >= 1 and reads[1] == reads[2] == 0

    def test_per_shard_sweep_counters(self):
        sharded = ShardedHashDatabase(2, hash_bits=HASH_BITS)
        by_shard = {0: [], 1: []}
        h = 0
        while min(len(g) for g in by_shard.values()) < 3:
            by_shard[sharded.shard_of(h)].append(h)
            h += 1
        sharded.sweep(frozenset(by_shard[0][:2]))
        sharded.sweep(frozenset(by_shard[0][:1] + by_shard[1][:3]))
        snap = sharded.metrics.registry.snapshot()
        prefix = sharded.metrics.prefix
        assert snap[f"{prefix}0.sweeps"] == 2
        assert snap[f"{prefix}0.hashes_swept"] == 3
        assert snap[f"{prefix}1.sweeps"] == 1
        assert snap[f"{prefix}1.hashes_swept"] == 3
        assert snap[f"{prefix}0.distinct_hashes"] == 0  # nothing recorded


class TestPerShardFaults:
    def _db_with_hashes(self, n_shards=4):
        sharded = ShardedHashDatabase(n_shards, hash_bits=HASH_BITS)
        by_shard = {i: [] for i in range(n_shards)}
        h = 0
        while min(len(g) for g in by_shard.values()) < 2:
            by_shard[sharded.shard_of(h)].append(h)
            h += 1
        for i, group in by_shard.items():
            for h in group:
                sharded.record(h, f"seg-{i}", 1.0)
        return sharded, by_shard

    def test_degraded_shard_only_fails_queries_routed_there(self):
        sharded, by_shard = self._db_with_hashes()
        sharded.set_faults(
            FaultInjector.for_shards(4, {2: [Fault.drop(), Fault.drop()]})
        )
        # Sweeps that avoid shard 2 are untouched by its schedule.
        assert sharded.sweep(frozenset(by_shard[0] + by_shard[1]))
        with pytest.raises(ShardDegraded) as exc_info:
            sharded.sweep(frozenset(by_shard[2]))
        assert exc_info.value.shard == 2
        assert exc_info.value.kind == "drop"
        # Second scheduled drop, then the schedule is exhausted: healthy.
        with pytest.raises(ShardDegraded):
            sharded.sweep(frozenset(by_shard[2] + by_shard[3]))
        assert sharded.sweep(frozenset(by_shard[2]))

    def test_error_fault_carries_status(self):
        sharded, by_shard = self._db_with_hashes()
        sharded.set_faults(FaultInjector.for_shards(4, {1: [Fault.error(502)]}))
        with pytest.raises(ShardDegraded) as exc_info:
            sharded.sweep(frozenset(by_shard[1]))
        assert exc_info.value.kind == "error"
        assert exc_info.value.status == 502

    def test_latency_fault_is_counted_but_not_raised(self):
        sharded, by_shard = self._db_with_hashes()
        injectors = FaultInjector.for_shards(4, {0: [Fault.slow(9.0)]})
        sharded.set_faults(injectors)
        assert sharded.sweep(frozenset(by_shard[0]))  # server owns the budget
        assert injectors[0].stats()["injected_latency"] == 1

    def test_set_faults_validates_length_and_clears(self):
        sharded, by_shard = self._db_with_hashes()
        with pytest.raises(DisclosureError):
            sharded.set_faults([FaultInjector()])
        sharded.set_faults(FaultInjector.for_shards(4, {0: [Fault.drop()]}))
        sharded.set_faults(None)
        assert sharded.sweep(frozenset(by_shard[0]))  # schedule discarded

    def test_for_shards_rejects_unknown_shard(self):
        with pytest.raises(ValueError):
            FaultInjector.for_shards(2, {5: [Fault.drop()]})


class TestShardedDisclosureEngine:
    def test_stats_gains_shard_count_and_gauges_track_sharded_db(self):
        engine = ShardedDisclosureEngine(CONFIG, n_shards=4)
        engine.observe("seg-a", "the quick brown fox jumps over the lazy dog")
        stats = engine.stats()
        assert stats["shards"] == 4
        assert stats["distinct_hashes"] == len(engine.hash_db) > 0
        snap = engine.registry.snapshot()
        assert snap["engine.paragraph.shards"] == 4
        assert snap["engine.paragraph.distinct_hashes"] == stats["distinct_hashes"]
        assert sum(engine.hash_db.shard_sizes()) == stats["distinct_hashes"]
        engine.hash_db.check_invariants()

    def test_indexed_query_matches_reference_scan(self):
        engine = ShardedDisclosureEngine(CONFIG, n_shards=4)
        engine.observe("a", "alpha bravo charlie delta echo foxtrot golf hotel")
        engine.observe("b", "alpha bravo charlie delta india juliet kilo lima")
        fp = engine.fingerprint("alpha bravo charlie delta echo foxtrot")
        indexed = engine.disclosing_sources(fingerprint=fp)
        reference = engine.disclosing_sources_reference(fingerprint=fp)
        assert indexed == reference
        assert indexed.disclosing


class TestEpochs:
    """Per-shard mutation epochs — the §13 verdict-cache tokens."""

    def test_epoch_for_covers_exactly_the_routed_shards(self):
        db = ShardedHashDatabase(4, hash_bits=HASH_BITS)
        rng = random.Random(13)
        hashes = [rng.randrange(1 << HASH_BITS) for _ in range(64)]
        token = db.epoch_for(hashes)
        want = sorted({shard_of(h, 4, HASH_BITS) for h in hashes})
        assert [index for index, _e in token] == want
        assert all(epoch == 0 for _i, epoch in token)
        assert db.epoch_for([]) == ()

    def test_epoch_for_single_hash_routes_to_home_shard(self):
        db = ShardedHashDatabase(8, hash_bits=HASH_BITS)
        h = 0xDEADBEEF
        assert db.epoch_for([h]) == ((shard_of(h, 8, HASH_BITS), 0),)

    def test_bump_epochs_for_advances_only_touched_shards(self):
        db = ShardedHashDatabase(4, hash_bits=HASH_BITS)
        rng = random.Random(17)
        # Find one hash per shard, then bump through two of them.
        by_shard = {}
        while len(by_shard) < 4:
            h = rng.randrange(1 << HASH_BITS)
            by_shard.setdefault(shard_of(h, 4, HASH_BITS), h)
        db.bump_epochs_for([by_shard[0], by_shard[2]])
        assert db.epochs() == [1, 0, 1, 0]
        db.bump_epochs_for([])
        assert db.epochs() == [1, 0, 1, 0]
        db.bump_epoch(1)
        assert db.epochs() == [1, 1, 1, 0]

    def test_token_equality_is_exactly_shared_shard_stability(self):
        """A mutation invalidates tokens that share a shard with it and
        leaves every disjoint token valid."""
        db = ShardedHashDatabase(4, hash_bits=HASH_BITS)
        rng = random.Random(19)
        by_shard = {}
        while len(by_shard) < 4:
            h = rng.randrange(1 << HASH_BITS)
            by_shard.setdefault(shard_of(h, 4, HASH_BITS), h)
        mine = db.epoch_for([by_shard[0]])
        other = db.epoch_for([by_shard[3]])
        db.bump_epochs_for([by_shard[0], by_shard[1]])
        assert db.epoch_for([by_shard[0]]) != mine
        assert db.epoch_for([by_shard[3]]) == other

    def test_record_fingerprint_bumps_epochs(self):
        db = ShardedHashDatabase(4, hash_bits=HASH_BITS)
        rng = random.Random(23)
        hashes = [rng.randrange(1 << HASH_BITS) for _ in range(64)]
        before = db.epoch_for(hashes)
        db.record_fingerprint("seg", hashes, 1.0)
        assert db.epoch_for(hashes) != before

    def test_touched_shards_early_exit_matches_full_routing(self):
        """The early-exit routing must agree with routing every hash,
        including sets too small to touch every shard."""
        rng = random.Random(29)
        for n in (2, 4, 8):
            db = ShardedHashDatabase(n, hash_bits=HASH_BITS)
            for size in (0, 1, 2, 5, 64, 500):
                hashes = [
                    rng.randrange(1 << HASH_BITS) for _ in range(size)
                ]
                want = {shard_of(h, n, HASH_BITS) for h in hashes}
                assert db._touched_shards(hashes) == want
