"""Tests for the clipboard substrate and the precise-taint baseline."""

import pytest

from repro.baselines import ExternalEditor, PreciseClipboardTracker
from repro.browser.clipboard import Clipboard
from repro.browser.dom import Document
from repro.errors import BrowserError
from repro.tdm import Label, PolicyStore

WIKI = "https://wiki.example"
DOCS = "https://docs.example"


@pytest.fixture
def policies():
    store = PolicyStore()
    store.register_service(
        WIKI, privilege=Label.of("tw"), confidentiality=Label.of("tw")
    )
    store.register_service(DOCS)
    return store


@pytest.fixture
def clipboard():
    return Clipboard()


class TestClipboard:
    def test_copy_paste_roundtrip(self, clipboard):
        clipboard.copy("hello", source_origin=WIKI)
        entry = clipboard.paste()
        assert entry.text == "hello"
        assert entry.source_origin == WIKI
        assert entry.from_browser

    def test_external_copy_has_no_provenance(self, clipboard):
        entry = clipboard.copy("typed elsewhere")
        assert not entry.from_browser

    def test_copy_replaces_current(self, clipboard):
        clipboard.copy("first")
        clipboard.copy("second")
        assert clipboard.paste().text == "second"

    def test_history_kept(self, clipboard):
        clipboard.copy("a")
        clipboard.copy("b")
        assert [e.text for e in clipboard.history] == ["a", "b"]

    def test_empty_paste_raises(self, clipboard):
        with pytest.raises(BrowserError):
            clipboard.paste()

    def test_paste_non_destructive(self, clipboard):
        clipboard.copy("sticky")
        clipboard.paste()
        assert clipboard.paste().text == "sticky"

    def test_copy_from_element_records_node(self, clipboard):
        document = Document()
        par = document.create_element("p")
        par.set_text("paragraph text")
        document.body.append_child(par)
        entry = clipboard.copy_from_element(par, WIKI)
        assert entry.text == "paragraph text"
        assert entry.source_node_id == par.node_id

    def test_clear(self, clipboard):
        clipboard.copy("x")
        clipboard.clear()
        assert clipboard.is_empty


class TestPreciseTracker:
    def test_direct_copy_paste_caught(self, policies, clipboard):
        tracker = PreciseClipboardTracker(policies)
        entry = clipboard.copy("secret wiki text", source_origin=WIKI)
        tracker.on_copy(entry)
        tracker.on_paste("docs:p0", entry)
        assert not tracker.check_upload(DOCS, "docs:p0")

    def test_taint_accumulates(self, policies, clipboard):
        policies.register_service(
            "https://itool.example",
            privilege=Label.of("ti"),
            confidentiality=Label.of("ti"),
        )
        tracker = PreciseClipboardTracker(policies)
        e1 = clipboard.copy("a", source_origin=WIKI)
        tracker.on_copy(e1)
        tracker.on_paste("seg", e1)
        e2 = clipboard.copy("b", source_origin="https://itool.example")
        tracker.on_copy(e2)
        tracker.on_paste("seg", e2)
        assert tracker.taint_of("seg") == Label.of("tw", "ti")

    def test_retyped_text_missed(self, policies):
        """Challenge (i): typing from memory is invisible to taint."""
        tracker = PreciseClipboardTracker(policies)
        tracker.on_type("docs:p0")
        assert tracker.check_upload(DOCS, "docs:p0")  # false negative

    def test_external_editor_launders_provenance(self, policies, clipboard):
        """Challenge (i): a native-app round-trip drops the taint."""
        tracker = PreciseClipboardTracker(policies)
        entry = clipboard.copy("secret wiki text", source_origin=WIKI)
        tracker.on_copy(entry)
        editor = ExternalEditor()
        editor.paste_from(clipboard)
        editor.edit(lambda text: text + " lightly edited")
        relaundered = editor.copy_to(clipboard)
        tracker.on_copy(relaundered)
        tracker.on_paste("docs:p0", relaundered)
        assert tracker.check_upload(DOCS, "docs:p0")  # false negative

    def test_taint_never_decays(self, policies, clipboard):
        """Challenge (ii): a full rewrite keeps the taint — false positive."""
        tracker = PreciseClipboardTracker(policies)
        entry = clipboard.copy("secret wiki text", source_origin=WIKI)
        tracker.on_copy(entry)
        tracker.on_paste("docs:p0", entry)
        tracker.on_edit("docs:p0")  # content fully rewritten in place
        assert not tracker.check_upload(DOCS, "docs:p0")  # still blocked

    def test_untracked_clipboard_entry_harmless(self, policies, clipboard):
        tracker = PreciseClipboardTracker(policies)
        entry = clipboard.copy("never observed by on_copy", source_origin=WIKI)
        tracker.on_paste("seg", entry)
        assert tracker.check_upload(DOCS, "seg")


class TestExternalEditor:
    def test_roundtrip(self, clipboard):
        clipboard.copy("draft", source_origin=WIKI)
        editor = ExternalEditor()
        editor.paste_from(clipboard)
        assert editor.buffer == "draft"
        editor.edit(str.upper)
        entry = editor.copy_to(clipboard)
        assert entry.text == "DRAFT"
        assert not entry.from_browser

    def test_identity_edit(self, clipboard):
        clipboard.copy("same")
        editor = ExternalEditor()
        editor.paste_from(clipboard)
        assert editor.edit() == "same"
