"""Tests for the Karp–Rabin rolling hash (step S2)."""

import pytest

from repro.errors import FingerprintError
from repro.fingerprint.rolling_hash import KarpRabin


class TestHashOne:
    def test_deterministic(self):
        kr = KarpRabin(ngram_size=5)
        assert kr.hash_one("abcde") == kr.hash_one("abcde")

    def test_different_inputs_differ(self):
        kr = KarpRabin(ngram_size=5)
        assert kr.hash_one("abcde") != kr.hash_one("abcdf")

    def test_order_sensitive(self):
        kr = KarpRabin(ngram_size=3)
        assert kr.hash_one("abc") != kr.hash_one("cba")

    def test_wrong_length_rejected(self):
        kr = KarpRabin(ngram_size=4)
        with pytest.raises(FingerprintError):
            kr.hash_one("abc")

    def test_within_hash_bits(self):
        kr = KarpRabin(ngram_size=8, hash_bits=16)
        value = kr.hash_one("abcdefgh")
        assert 0 <= value < 2**16


class TestRolling:
    def test_roll_equals_direct(self):
        kr = KarpRabin(ngram_size=4)
        h = kr.hash_one("abcd")
        rolled = kr.roll(h, "a", "e")
        assert rolled == kr.hash_one("bcde")

    def test_hash_all_matches_direct_hashing(self):
        kr = KarpRabin(ngram_size=6)
        text = "the quick brown fox jumps"
        expected = [kr.hash_one(text[i:i + 6]) for i in range(len(text) - 5)]
        assert list(kr.hash_all(text)) == expected

    def test_hash_all_short_text_empty(self):
        kr = KarpRabin(ngram_size=10)
        assert list(kr.hash_all("short")) == []

    def test_hash_all_exact_length(self):
        kr = KarpRabin(ngram_size=5)
        assert len(list(kr.hash_all("exact"))) == 1

    def test_hash_all_count(self):
        kr = KarpRabin(ngram_size=3)
        assert len(list(kr.hash_all("abcdefg"))) == 5

    def test_long_roll_consistency(self):
        kr = KarpRabin(ngram_size=15, hash_bits=32)
        text = "a reasonably long sample sentence for rolling hash checks" * 3
        direct = [kr.hash_one(text[i:i + 15]) for i in range(len(text) - 14)]
        assert list(kr.hash_all(text)) == direct


class TestFastPath:
    """The bytes/table-driven ``hash_all_list`` path (hot path)."""

    def test_matches_direct_hashing(self):
        kr = KarpRabin(ngram_size=6)
        text = "the quick brown fox jumps over the lazy dog"
        expected = [kr.hash_one(text[i:i + 6]) for i in range(len(text) - 5)]
        assert kr.hash_all_list(text) == expected

    def test_latin1_supplement_matches(self):
        # Code points 128–255 survive the Latin-1 bytes encoding.
        kr = KarpRabin(ngram_size=3)
        text = "café crème brûlée"
        expected = [kr.hash_one(text[i:i + 3]) for i in range(len(text) - 2)]
        assert kr.hash_all_list(text) == expected

    def test_wide_codepoint_fallback_matches(self):
        # CJK / Greek force the character path; results must be equal.
        kr = KarpRabin(ngram_size=3)
        text = "αβγ mixed ascii 中文 tail"
        expected = [kr.hash_one(text[i:i + 3]) for i in range(len(text) - 2)]
        assert kr.hash_all_list(text) == expected
        assert list(kr.hash_all(text)) == expected

    def test_short_text_empty_list(self):
        assert KarpRabin(ngram_size=9).hash_all_list("tiny") == []


class TestValidation:
    def test_zero_ngram_rejected(self):
        with pytest.raises(FingerprintError):
            KarpRabin(ngram_size=0)

    def test_bad_hash_bits_rejected(self):
        with pytest.raises(FingerprintError):
            KarpRabin(ngram_size=3, hash_bits=4)
        with pytest.raises(FingerprintError):
            KarpRabin(ngram_size=3, hash_bits=128)

    def test_ngram_size_property(self):
        assert KarpRabin(ngram_size=7).ngram_size == 7
