"""Unit tests for the write-ahead log layer (DESIGN.md §14).

Record format, torn-tail scanning and truncation, fsync policy knobs,
rotation, the sharded WALSet, encryption, and the journaling hooks that
connect engine mutations to the log. Crash *recovery* end-to-end lives
in test_disc_persistence.py (the crash matrix); standby catch-up in
test_standby_failover.py.
"""

import json
import struct
import threading
import zlib

import pytest

from repro.disclosure import DisclosureEngine
from repro.disclosure.wal import (
    LSNCounter,
    MAGIC,
    DurableEngine,
    EngineJournal,
    WALSet,
    WriteAheadLog,
    apply_record,
    read_wal_directory,
    replay_records,
    scan_wal_file,
)
from repro.errors import DisclosureError, SimulatedCrash, WALCorrupt
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.crypto import UploadCipher
from repro.util.clock import LogicalClock
from repro.util.faults import Fault, FaultInjector

from conftest import OTHER_TEXT, SECRET_TEXT

_HEADER = struct.Struct(">II")


def wal_records(path, cipher=None):
    records, _good, _torn = scan_wal_file(path, cipher=cipher)
    return records


class TestRecordFormat:
    def test_file_starts_with_magic(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        assert (tmp_path / "wal.log").read_bytes().startswith(MAGIC)

    def test_record_layout_length_crc_payload(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("remove", kind="paragraph", id="x")
        wal.close()
        blob = (tmp_path / "wal.log").read_bytes()[len(MAGIC):]
        length, crc = _HEADER.unpack_from(blob)
        payload = blob[_HEADER.size:_HEADER.size + length]
        assert len(payload) == length
        assert zlib.crc32(payload) == crc
        record = json.loads(payload)
        assert record["op"] == "remove"
        assert record["lsn"] == 1
        assert record["id"] == "x"

    def test_lsns_strictly_increase(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        lsns = [wal.append("remove", kind="paragraph", id=str(i)) for i in range(5)]
        wal.close()
        assert lsns == [1, 2, 3, 4, 5]

    def test_unknown_op_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(DisclosureError):
            wal.append("mystery", id="x")
        wal.close()

    def test_bad_magic_raises_wal_corrupt(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL\n" + b"garbage")
        with pytest.raises(WALCorrupt):
            scan_wal_file(path)

    def test_missing_file_scans_empty(self, tmp_path):
        records, good, torn = scan_wal_file(tmp_path / "absent.log")
        assert (records, good, torn) == ([], 0, 0)


class TestTornTail:
    def fill(self, path, n=3):
        wal = WriteAheadLog(path, fsync="always")
        for i in range(n):
            wal.append("remove", kind="paragraph", id=f"seg{i}")
        wal.close()

    def test_scan_stops_at_torn_record(self, tmp_path):
        path = tmp_path / "wal.log"
        self.fill(path)
        whole = path.read_bytes()
        path.write_bytes(whole[:-5])  # tear the last record
        records, good, torn = scan_wal_file(path)
        assert [r["id"] for r in records] == ["seg0", "seg1"]
        assert torn > 0
        assert good + torn == len(whole) - 5

    @pytest.mark.parametrize("keep", [0, 1, 4, 7, 8])
    def test_torn_header_or_checksum(self, tmp_path, keep):
        """Tears inside the 8-byte header are as recoverable as tears
        inside the payload."""
        path = tmp_path / "wal.log"
        self.fill(path, n=1)
        wal = WriteAheadLog(path, fsync="always")
        start = path.stat().st_size
        wal.append("remove", kind="paragraph", id="doomed")
        wal.close()
        blob = path.read_bytes()
        path.write_bytes(blob[: start + keep])
        records, _good, torn = scan_wal_file(path)
        assert [r["id"] for r in records] == ["seg0"]
        assert torn == keep

    def test_corrupted_crc_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        self.fill(path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte under the last checksum
        path.write_bytes(bytes(blob))
        records, _good, torn = scan_wal_file(path)
        assert [r["id"] for r in records] == ["seg0", "seg1"]
        assert torn > 0

    def test_reopen_truncates_and_appends_cleanly(self, tmp_path):
        path = tmp_path / "wal.log"
        self.fill(path)
        whole = path.read_bytes()
        path.write_bytes(whole[:-5])
        wal = WriteAheadLog(path)
        assert [r["id"] for r in wal.recovered_records] == ["seg0", "seg1"]
        wal.append("remove", kind="paragraph", id="after")
        wal.close()
        records, _good, torn = scan_wal_file(path)
        assert [r["id"] for r in records] == ["seg0", "seg1", "after"]
        assert torn == 0

    def test_lsn_resumes_past_disk(self, tmp_path):
        path = tmp_path / "wal.log"
        self.fill(path, n=4)
        wal = WriteAheadLog(path)
        assert wal.append("remove", kind="paragraph", id="next") == 5
        wal.close()


class TestFsyncPolicy:
    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", fsync="batch", fsync_interval=0)

    @pytest.mark.parametrize(
        "fsync,interval,appends,expected",
        [
            ("always", 16, 4, 4),
            ("batch", 2, 4, 2),
            ("never", 16, 4, 0),
        ],
    )
    def test_fsync_counts_follow_policy(
        self, tmp_path, fsync, interval, appends, expected
    ):
        wal = WriteAheadLog(
            tmp_path / "wal.log", fsync=fsync, fsync_interval=interval
        )
        baseline = wal.metrics.counter("fsyncs").value
        for i in range(appends):
            wal.append("remove", kind="paragraph", id=str(i))
        assert wal.metrics.counter("fsyncs").value - baseline == expected
        wal.close()

    def test_records_visible_even_without_fsync(self, tmp_path):
        # flush() on every append: a reader (the log shipper) sees whole
        # records regardless of the durability policy.
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="never")
        wal.append("remove", kind="paragraph", id="x")
        assert [r["id"] for r in wal_records(tmp_path / "wal.log")] == ["x"]
        wal.close()


class TestCrashInjection:
    def test_dead_after_crash(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            faults=FaultInjector(schedule=[Fault.drop()]),
        )
        with pytest.raises(SimulatedCrash):
            wal.append("remove", kind="paragraph", id="x")
        with pytest.raises(DisclosureError):
            wal.append("remove", kind="paragraph", id="y")
        wal.close()

    def test_error_crash_record_survives(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            faults=FaultInjector(schedule=[Fault.error()]),
        )
        with pytest.raises(SimulatedCrash):
            wal.append("remove", kind="paragraph", id="x")
        assert [r["id"] for r in wal_records(tmp_path / "wal.log")] == ["x"]

    def test_torn_crash_record_lost(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            faults=FaultInjector(schedule=[Fault.slow(6)]),
        )
        with pytest.raises(SimulatedCrash):
            wal.append("remove", kind="paragraph", id="x")
        records, _good, torn = scan_wal_file(tmp_path / "wal.log")
        assert records == []
        assert torn == 6


class TestRotation:
    def test_rotate_leaves_compact_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="always")
        for i in range(3):
            wal.append("remove", kind="paragraph", id=str(i))
        wal.rotate(snapshot_lsn=3)
        records = wal_records(tmp_path / "wal.log")
        assert len(records) == 1
        assert records[0]["op"] == "compact"
        assert records[0]["snapshot_lsn"] == 3
        assert records[0]["lsn"] == 4
        wal.append("remove", kind="paragraph", id="after")
        wal.close()
        assert [r["op"] for r in wal_records(tmp_path / "wal.log")] == [
            "compact", "remove",
        ]

    def test_replay_skips_covered_records(self, tmp_path):
        engine = DisclosureEngine(TINY_CONFIG, LogicalClock())
        records = [
            {"lsn": 1, "op": "remove", "kind": "paragraph", "id": "a"},
            {"lsn": 2, "op": "compact", "snapshot_lsn": 1},
        ]
        applied, skipped = replay_records(
            records, lambda _k: engine, after_lsn=1
        )
        assert (applied, skipped) == (0, 2)


class TestWALSet:
    def test_single_shard_uses_classic_name(self, tmp_path):
        wal = WALSet(tmp_path, n_shards=1)
        assert [p.name for p in wal.paths()] == ["wal.log"]
        wal.close()

    def test_sharded_names_and_routing(self, tmp_path):
        wal = WALSet(tmp_path, n_shards=3)
        assert [p.name for p in wal.paths()] == [
            "wal.0.log", "wal.1.log", "wal.2.log",
        ]
        keys = [f"seg{i}" for i in range(12)]
        for key in keys:
            wal.append("remove", key=key, kind="paragraph", id=key)
        by_shard = {
            p.name: [r["id"] for r in wal_records(p)] for p in wal.paths()
        }
        for key in keys:
            expected = f"wal.{zlib.crc32(key.encode()) % 3}.log"
            assert key in by_shard[expected]
        wal.close()

    def test_routing_is_stable_across_instances(self, tmp_path):
        # crc32, not the per-process-salted hash(): the same key lands
        # in the same file after a restart.
        a = WALSet(tmp_path / "a", n_shards=4)
        b = WALSet(tmp_path / "b", n_shards=4)
        for key in ("alpha", "beta", "gamma"):
            assert a.shard_for(key) == b.shard_for(key)
        a.close()
        b.close()

    def test_merged_stream_is_lsn_sorted(self, tmp_path):
        wal = WALSet(tmp_path, n_shards=3, fsync="always")
        for i in range(9):
            wal.append("remove", key=f"seg{i}", kind="paragraph", id=f"seg{i}")
        wal.close()
        reopened = WALSet(tmp_path, n_shards=3)
        lsns = [r["lsn"] for r in reopened.recovered_records]
        assert lsns == sorted(lsns) == list(range(1, 10))
        reopened.close()
        records, torn = read_wal_directory(tmp_path)
        assert [r["lsn"] for r in records] == list(range(1, 10))
        assert torn == 0

    def test_rotate_all_shards(self, tmp_path):
        wal = WALSet(tmp_path, n_shards=2, fsync="always")
        for i in range(4):
            wal.append("remove", key=f"seg{i}", kind="paragraph", id=f"seg{i}")
        wal.rotate(wal.last_lsn)
        for path in wal.paths():
            records = wal_records(path)
            assert [r["op"] for r in records] == ["compact"]
        wal.close()

    def test_invalid_shard_count(self, tmp_path):
        with pytest.raises(ValueError):
            WALSet(tmp_path, n_shards=0)

    def test_rotate_refuses_to_discard_acknowledged_records(self, tmp_path):
        """An append acknowledged after the snapshot stamp must not be
        replaced away by the rotation — the write-ahead contract."""
        wal = WALSet(tmp_path, fsync="always")
        for i in range(3):
            wal.append("remove", key=f"seg{i}", kind="paragraph", id=f"seg{i}")
        snapshot_lsn = wal.last_lsn
        wal.append("remove", key="late", kind="paragraph", id="late")
        with pytest.raises(DisclosureError, match="discard acknowledged"):
            wal.rotate(snapshot_lsn)
        # The late record is still on disk, untouched.
        records, _torn = read_wal_directory(tmp_path)
        assert [r["id"] for r in records] == ["seg0", "seg1", "seg2", "late"]
        wal.close()

    def test_open_with_wrong_shard_count_fails_loudly(self, tmp_path):
        """A directory written with 4 shards must not open (and silently
        drop three files' records) under a smaller shard count."""
        wal = WALSet(tmp_path, n_shards=4, fsync="always")
        for i in range(8):
            wal.append("remove", key=f"seg{i}", kind="paragraph", id=f"seg{i}")
        wal.close()
        before = {p.name: p.read_bytes() for p in tmp_path.glob("wal*.log")}
        for wrong in (1, 2):
            with pytest.raises(WALCorrupt, match="shard count"):
                WALSet(tmp_path, n_shards=wrong)
        # Nothing truncated by the refused opens.
        assert {
            p.name: p.read_bytes() for p in tmp_path.glob("wal*.log")
        } == before

    def test_single_shard_dir_refuses_sharded_open(self, tmp_path):
        wal = WALSet(tmp_path, n_shards=1, fsync="always")
        wal.append("remove", key="a", kind="paragraph", id="a")
        wal.close()
        with pytest.raises(WALCorrupt, match="shard count"):
            WALSet(tmp_path, n_shards=2)


class TestEncryptedWAL:
    def test_payloads_armoured_on_disk(self, tmp_path):
        cipher = UploadCipher("log-key")
        wal = WriteAheadLog(tmp_path / "wal.log", cipher=cipher)
        wal.append("remove", kind="paragraph", id="visible-segment-name")
        wal.close()
        blob = (tmp_path / "wal.log").read_bytes()
        assert b"visible-segment-name" not in blob
        assert [r["id"] for r in wal_records(tmp_path / "wal.log", cipher)] == [
            "visible-segment-name"
        ]

    def test_wrong_key_raises_wal_corrupt_not_tail_damage(self, tmp_path):
        """A record that passes its checksum but does not decrypt is a
        wrong key, not a torn append — classifying it as tail damage
        would let recovery truncate every acknowledged record away."""
        cipher = UploadCipher("log-key")
        wal = WriteAheadLog(tmp_path / "wal.log", cipher=cipher)
        wal.append("remove", kind="paragraph", id="x")
        wal.close()
        with pytest.raises(WALCorrupt, match="wrong cipher key"):
            scan_wal_file(tmp_path / "wal.log", cipher=UploadCipher("wrong-key"))

    def test_wrong_key_open_does_not_destroy_log(self, tmp_path):
        """Opening (WriteAheadLog or DurableEngine) with the wrong key
        must fail loudly and leave the log bytes intact, so a retry
        with the right key recovers every acknowledged record."""
        cipher = UploadCipher("log-key")
        durable = DurableEngine(
            tmp_path, config=TINY_CONFIG, cipher=cipher, fsync="always"
        )
        durable.observe("a", SECRET_TEXT, threshold=0.4)
        durable.observe("b", OTHER_TEXT, threshold=0.5)
        durable.close()
        before = (tmp_path / "wal.log").read_bytes()
        with pytest.raises(WALCorrupt):
            DurableEngine(
                tmp_path, config=TINY_CONFIG, cipher=UploadCipher("oops")
            )
        assert (tmp_path / "wal.log").read_bytes() == before
        recovered = DurableEngine(tmp_path, config=TINY_CONFIG, cipher=cipher)
        assert sorted(recovered.segment_db.ids()) == ["a", "b"]
        recovered.close()

    def test_wrong_key_with_snapshot_refuses_before_truncating(self, tmp_path):
        """With a snapshot present the wrong-key failure surfaces from
        the snapshot read, before the WAL is even opened — either way
        no file is modified."""
        cipher = UploadCipher("log-key")
        durable = DurableEngine(
            tmp_path, config=TINY_CONFIG, cipher=cipher, fsync="always",
            compact_every=1,
        )
        durable.observe("a", SECRET_TEXT, threshold=0.4)
        durable.observe("b", OTHER_TEXT, threshold=0.5)
        durable.close()
        before = {
            p.name: p.read_bytes() for p in tmp_path.iterdir() if p.is_file()
        }
        with pytest.raises(DisclosureError):
            DurableEngine(
                tmp_path, config=TINY_CONFIG, cipher=UploadCipher("oops")
            )
        after = {
            p.name: p.read_bytes() for p in tmp_path.iterdir() if p.is_file()
        }
        assert after == before
        recovered = DurableEngine(tmp_path, config=TINY_CONFIG, cipher=cipher)
        assert sorted(recovered.segment_db.ids()) == ["a", "b"]
        recovered.close()


class TestLSNCounter:
    def test_allocate_and_observe(self):
        counter = LSNCounter()
        assert counter.allocate() == 1
        counter.observe(10)
        assert counter.allocate() == 11
        assert counter.last_allocated == 11

    def test_observe_never_rewinds(self):
        counter = LSNCounter()
        counter.observe(5)
        counter.observe(2)
        assert counter.allocate() == 6


class TestJournalHooks:
    """Engine mutations translate 1:1 into WAL records."""

    def journaled_engine(self, tmp_path):
        wal = WALSet(tmp_path, fsync="always")
        engine = DisclosureEngine(TINY_CONFIG, LogicalClock())
        engine.attach_journal(EngineJournal(wal))
        return wal, engine

    def test_observe_record_carries_replayable_state(self, tmp_path):
        wal, engine = self.journaled_engine(tmp_path)
        record = engine.observe("a", SECRET_TEXT, threshold=0.4, doc_id="d")
        wal.close()
        (logged,) = wal_records(tmp_path / "wal.log")
        assert logged["op"] == "observe"
        assert logged["id"] == "a"
        assert logged["threshold"] == 0.4
        assert logged["doc_id"] == "d"
        assert logged["ts"] == record.last_updated
        # The hash set is not repeated in the record: it is exactly the
        # selection values, and replay derives it from them.
        assert "hashes" not in logged
        assert frozenset(
            value for value, _start, _end in logged["selections"]
        ) == record.fingerprint.hashes

    def test_observe_payload_is_canonical_json(self, tmp_path):
        """The hand-rolled observe encoder (hot path) must stay
        byte-identical to the canonical json.dumps encoding every other
        op uses — readers cannot tell which path wrote a record."""
        wal, engine = self.journaled_engine(tmp_path)
        engine.observe("ség \"quoted\"\n", SECRET_TEXT, threshold=0.4,
                       doc_id="döc\ttab")
        engine.observe("plain", OTHER_TEXT)  # doc_id None branch
        wal.close()
        blob = (tmp_path / "wal.log").read_bytes()[len(MAGIC):]
        offset = 0
        seen = 0
        while offset < len(blob):
            length, _crc = _HEADER.unpack_from(blob, offset)
            payload = blob[offset + _HEADER.size:offset + _HEADER.size + length]
            canonical = json.dumps(
                json.loads(payload), separators=(",", ":"), sort_keys=True,
            ).encode("utf-8")
            assert payload == canonical
            offset += _HEADER.size + length
            seen += 1
        assert seen == 2

    def test_remove_and_threshold_logged(self, tmp_path):
        wal, engine = self.journaled_engine(tmp_path)
        engine.observe("a", SECRET_TEXT)
        engine.set_threshold("a", 0.7)
        engine.remove("a")
        wal.close()
        ops = [r["op"] for r in wal_records(tmp_path / "wal.log")]
        assert ops == ["observe", "threshold", "remove"]

    def test_detach_stops_journaling(self, tmp_path):
        wal, engine = self.journaled_engine(tmp_path)
        engine.observe("a", SECRET_TEXT)
        engine.detach_journal()
        engine.observe("b", OTHER_TEXT)
        wal.close()
        assert [r["id"] for r in wal_records(tmp_path / "wal.log")] == ["a"]

    def test_replay_refuses_journaled_engine(self, tmp_path):
        wal, engine = self.journaled_engine(tmp_path)
        record = {"lsn": 1, "op": "remove", "kind": "paragraph", "id": "a"}
        with pytest.raises(DisclosureError):
            apply_record(record, lambda _k: engine)
        wal.close()

    def test_replayed_observe_does_not_advance_clock(self, tmp_path):
        wal, engine = self.journaled_engine(tmp_path)
        engine.observe("a", SECRET_TEXT)
        wal.close()
        replica = DisclosureEngine(TINY_CONFIG, LogicalClock())
        replay_records(wal_records(tmp_path / "wal.log"), lambda _k: replica)
        assert replica.segment_db.get("a").last_updated == (
            engine.segment_db.get("a").last_updated
        )
        assert replica._clock.now() == 0.0  # untouched by replay


class TestDurableEngineLifecycle:
    def test_compaction_bounds_log_and_preserves_state(self, tmp_path):
        durable = DurableEngine(
            tmp_path, config=TINY_CONFIG, compact_every=2, fsync="always"
        )
        durable.observe("a", SECRET_TEXT, threshold=0.4)
        durable.observe("b", OTHER_TEXT, threshold=0.4)  # triggers compact
        durable.observe("c", SECRET_TEXT, threshold=0.4)
        durable.close()
        assert (tmp_path / "snapshot.json").exists()
        records, _torn = read_wal_directory(tmp_path)
        ops = [r["op"] for r in records]
        assert ops == ["compact", "observe"]  # log bounded by the fold
        recovered = DurableEngine(tmp_path, config=TINY_CONFIG)
        assert sorted(recovered.segment_db.ids()) == ["a", "b", "c"]
        assert recovered.recovery.snapshot_lsn == 2
        assert recovered.recovery.replayed == 1
        recovered.close()

    def test_manual_compact_returns_lsn_stamp(self, tmp_path):
        durable = DurableEngine(tmp_path, config=TINY_CONFIG, fsync="always")
        durable.observe("a", SECRET_TEXT)
        assert durable.compact() == 1
        data = json.loads((tmp_path / "snapshot.json").read_text())
        assert data["wal_lsn"] == 1
        durable.close()

    def test_expire_journals_marker_and_removes(self, tmp_path):
        durable = DurableEngine(tmp_path, config=TINY_CONFIG, fsync="always")
        durable.observe("old", SECRET_TEXT)
        durable.observe("new", OTHER_TEXT)
        assert durable.expire(older_than=1.0) == ["old"]
        durable.close()
        ops = [r["op"] for r in read_wal_directory(tmp_path)[0]]
        assert ops == ["observe", "observe", "remove", "expire"]
        recovered = DurableEngine(tmp_path, config=TINY_CONFIG)
        assert recovered.segment_db.ids() == ["new"]
        recovered.close()

    def test_invalid_compact_every(self, tmp_path):
        with pytest.raises(ValueError):
            DurableEngine(tmp_path, config=TINY_CONFIG, compact_every=0)

    def test_concurrent_mutations_during_compaction_survive(self, tmp_path):
        """Compaction holds the engine lock across snapshot *and*
        rotation: an observe acknowledged between the two would
        otherwise be discarded with the old shard files — an
        acknowledged, journaled write lost on the next recovery."""
        durable = DurableEngine(tmp_path, config=TINY_CONFIG, fsync="never")
        errors = []
        acked = []

        def writer(idx):
            try:
                for i in range(15):
                    segment_id = f"w{idx}-{i}"
                    durable.observe(
                        segment_id,
                        SECRET_TEXT if i % 2 else OTHER_TEXT,
                        threshold=0.5,
                    )
                    acked.append(segment_id)
            except Exception as exc:  # pragma: no cover - regression path
                errors.append(exc)

        def compactor():
            try:
                for _ in range(8):
                    durable.compact()
            except Exception as exc:  # pragma: no cover - regression path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(0,)),
            threading.Thread(target=writer, args=(1,)),
            threading.Thread(target=compactor),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        durable.close()
        assert errors == []
        recovered = DurableEngine(tmp_path, config=TINY_CONFIG)
        try:
            assert sorted(recovered.segment_db.ids()) == sorted(acked)
        finally:
            recovered.close()

    def test_metrics_exposed(self, tmp_path):
        durable = DurableEngine(tmp_path, config=TINY_CONFIG, fsync="always")
        durable.observe("a", SECRET_TEXT)
        snapshot = durable.registry.snapshot()
        assert snapshot["wal.appends"] == 1
        assert snapshot["wal.fsyncs"] >= 1
        durable.close()


class TestShardManifest:
    """The snapshot records the WAL shard layout, so recovery cannot
    silently open fewer files than the deployment wrote."""

    def make_sharded(self, tmp_path, n_shards=4):
        durable = DurableEngine(
            tmp_path, config=TINY_CONFIG, n_shards=n_shards, fsync="always"
        )
        durable.observe("a", SECRET_TEXT, threshold=0.4)
        durable.observe("b", OTHER_TEXT, threshold=0.5)
        durable.compact()
        durable.observe("c", SECRET_TEXT, threshold=0.6)
        durable.close()
        return durable

    def test_snapshot_records_shard_count(self, tmp_path):
        self.make_sharded(tmp_path)
        data = json.loads((tmp_path / "snapshot.json").read_text())
        assert data["wal_shards"] == 4

    def test_recover_adopts_persisted_shard_count(self, tmp_path):
        """`repro recover`-style recovery (no n_shards given) must open
        every shard file the deployment wrote, not just wal.log."""
        self.make_sharded(tmp_path)
        recovered = DurableEngine(tmp_path, config=TINY_CONFIG)
        try:
            assert recovered.wal.n_shards == 4
            assert sorted(recovered.segment_db.ids()) == ["a", "b", "c"]
        finally:
            recovered.close()

    def test_recover_with_mismatched_shard_count_fails_loudly(self, tmp_path):
        self.make_sharded(tmp_path)
        with pytest.raises(DisclosureError, match="shard"):
            DurableEngine(tmp_path, config=TINY_CONFIG, n_shards=2)

    def test_uncompacted_sharded_dir_refuses_default_recovery(self, tmp_path):
        """Without a snapshot there is no manifest to adopt — but the
        stray shard files still fail the open instead of being dropped."""
        durable = DurableEngine(
            tmp_path, config=TINY_CONFIG, n_shards=4, fsync="always"
        )
        durable.observe("a", SECRET_TEXT, threshold=0.4)
        durable.close()
        with pytest.raises(WALCorrupt, match="shard count"):
            DurableEngine(tmp_path, config=TINY_CONFIG)
        recovered = DurableEngine(tmp_path, config=TINY_CONFIG, n_shards=4)
        try:
            assert recovered.segment_db.ids() == ["a"]
        finally:
            recovered.close()
