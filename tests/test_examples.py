"""Smoke tests: every shipped example runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 5
