"""Tests for passage attribution."""

from repro.disclosure import DisclosureEngine, attribute_disclosure
from repro.fingerprint.config import TINY_CONFIG

from conftest import OTHER_TEXT, SECRET_TEXT


def test_attribution_locates_shared_passage():
    engine = DisclosureEngine(TINY_CONFIG)
    source_text = OTHER_TEXT + " " + SECRET_TEXT
    target_text = SECRET_TEXT + " And some new commentary follows the pasted part."
    # The secret is only ~half of the source, so its containment in the
    # target sits near 0.5; use a threshold safely below the boundary.
    engine.observe("src", source_text, threshold=0.3)
    target_fp = engine.fingerprint(target_text)
    report = engine.disclosing_sources(fingerprint=target_fp)
    assert report.disclosing
    source = report.sources[0]
    src_fp = engine.segment_db.get("src").fingerprint

    match = attribute_disclosure(src_fp, target_fp, source.matched_hashes)
    source_excerpt = " ".join(match.source_excerpts(source_text))
    target_excerpt = " ".join(match.target_excerpts(target_text))
    # The attributed spans cover the secret, not the unrelated text.
    assert "consensus protocols" in source_excerpt
    assert "consensus protocols" in target_excerpt
    assert "harvest festival" not in target_excerpt


def test_attribution_empty_for_no_matches():
    engine = DisclosureEngine(TINY_CONFIG)
    a = engine.fingerprint(SECRET_TEXT)
    b = engine.fingerprint(OTHER_TEXT)
    match = attribute_disclosure(a, b, frozenset())
    assert match.source_spans == ()
    assert match.target_spans == ()


def test_attribution_spans_sorted_and_merged():
    engine = DisclosureEngine(TINY_CONFIG)
    fp = engine.fingerprint(SECRET_TEXT)
    match = attribute_disclosure(fp, fp, fp.hashes)
    spans = match.source_spans
    assert list(spans) == sorted(spans)
    for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
        assert b1 < a2
