"""Tests for DBhash / DBpar (repro.disclosure.store)."""

import pytest

from repro.disclosure.store import HashDatabase, SegmentDatabase, SegmentRecord
from repro.errors import UnknownSegmentError
from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import TINY_CONFIG


def record_for(segment_id, text, **kwargs):
    fp = Fingerprinter(TINY_CONFIG).fingerprint(text)
    return SegmentRecord(segment_id=segment_id, fingerprint=fp, **kwargs)


class TestHashDatabase:
    def test_record_and_len(self):
        db = HashDatabase()
        assert db.record(1, "a", 0.0)
        assert db.record(2, "a", 1.0)
        assert len(db) == 2

    def test_duplicate_observation_ignored(self):
        db = HashDatabase()
        assert db.record(1, "a", 0.0)
        assert not db.record(1, "a", 5.0)
        assert db.first_seen(1, "a") == 0.0

    def test_oldest_owner(self):
        db = HashDatabase()
        db.record(1, "b", 1.0)
        db.record(1, "a", 2.0)
        assert db.oldest_owner(1) == "b"

    def test_oldest_owner_tie_breaks_lexicographically(self):
        db = HashDatabase()
        db.record(1, "zeta", 1.0)
        db.record(1, "alpha", 1.0)
        assert db.oldest_owner(1) == "alpha"

    def test_oldest_owner_unknown_hash(self):
        assert HashDatabase().oldest_owner(99) is None

    def test_owners_sorted_by_time(self):
        db = HashDatabase()
        db.record(1, "c", 3.0)
        db.record(1, "a", 1.0)
        db.record(1, "b", 2.0)
        assert [s for s, _t in db.owners(1)] == ["a", "b", "c"]

    def test_contains(self):
        db = HashDatabase()
        db.record(7, "a", 0.0)
        assert 7 in db
        assert 8 not in db

    def test_discard_segment_releases_ownership(self):
        db = HashDatabase()
        db.record(1, "first", 0.0)
        db.record(1, "second", 1.0)
        removed = db.discard_segment("first")
        assert removed == 1
        assert db.oldest_owner(1) == "second"

    def test_discard_segment_drops_orphan_hashes(self):
        db = HashDatabase()
        db.record(1, "only", 0.0)
        db.discard_segment("only")
        assert len(db) == 0
        assert 1 not in db

    def test_discard_unknown_segment_noop(self):
        db = HashDatabase()
        db.record(1, "a", 0.0)
        assert db.discard_segment("missing") == 0
        assert len(db) == 1


class TestSegmentDatabase:
    def test_put_get(self):
        db = SegmentDatabase()
        rec = record_for("s1", "some paragraph text that is long enough to matter")
        db.put(rec)
        assert db.get("s1") is rec

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownSegmentError):
            SegmentDatabase().get("nope")

    def test_find_returns_none(self):
        assert SegmentDatabase().find("nope") is None

    def test_put_replaces(self):
        db = SegmentDatabase()
        db.put(record_for("s1", "original paragraph content for the segment"))
        newer = record_for("s1", "replacement paragraph content for the segment")
        db.put(newer)
        assert db.get("s1") is newer
        assert len(db) == 1

    def test_remove(self):
        db = SegmentDatabase()
        rec = record_for("s1", "content to be removed from the database later")
        db.put(rec)
        assert db.remove("s1") is rec
        assert "s1" not in db

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownSegmentError):
            SegmentDatabase().remove("ghost")

    def test_iteration_and_ids(self):
        db = SegmentDatabase()
        db.put(record_for("a", "first paragraph with enough characters inside"))
        db.put(record_for("b", "second paragraph with enough characters inside"))
        assert sorted(db.ids()) == ["a", "b"]
        assert {r.segment_id for r in db} == {"a", "b"}

    def test_in_document(self):
        db = SegmentDatabase()
        db.put(record_for("p1", "paragraph one content inside document alpha", doc_id="alpha"))
        db.put(record_for("p2", "paragraph two content inside document alpha", doc_id="alpha"))
        db.put(record_for("p3", "paragraph in a different document entirely", doc_id="beta"))
        assert {r.segment_id for r in db.in_document("alpha")} == {"p1", "p2"}

    def test_in_document_index_follows_updates(self):
        db = SegmentDatabase()
        db.put(record_for("p1", "paragraph one content inside document alpha", doc_id="alpha"))
        # Re-homing a paragraph moves it between document buckets.
        db.put(record_for("p1", "paragraph one content inside document alpha", doc_id="beta"))
        assert db.in_document("alpha") == []
        assert {r.segment_id for r in db.in_document("beta")} == {"p1"}

    def test_in_document_index_follows_removal(self):
        db = SegmentDatabase()
        db.put(record_for("p1", "paragraph one content inside document alpha", doc_id="alpha"))
        db.put(record_for("p2", "paragraph two content inside document alpha", doc_id="alpha"))
        db.remove("p1")
        assert {r.segment_id for r in db.in_document("alpha")} == {"p2"}
        db.remove("p2")
        assert db.in_document("alpha") == []

    def test_in_document_ignores_docless_segments(self):
        db = SegmentDatabase()
        db.put(record_for("solo", "a standalone segment with no containing document"))
        assert db.in_document("anything") == []


class TestOwnershipIndexes:
    def test_owned_hashes_tracks_claims(self):
        db = HashDatabase()
        db.record(1, "a", 0.0)
        db.record(2, "a", 0.0)
        db.record(1, "b", 1.0)
        assert db.owned_hashes("a") == {1, 2}
        assert db.owned_hashes("b") == set()

    def test_owned_hashes_migrates_on_removal(self):
        db = HashDatabase()
        db.record(1, "a", 0.0)
        db.record(1, "b", 1.0)
        db.remove_observation(1, "a")
        assert db.owned_hashes("a") == set()
        assert db.owned_hashes("b") == {1}
        assert db.oldest_owner(1) == "b"

    def test_earlier_record_steals_ownership(self):
        db = HashDatabase()
        db.record(1, "late", 5.0)
        assert db.oldest_owner(1) == "late"
        db.record(1, "early", 1.0)
        assert db.oldest_owner(1) == "early"
        assert db.owned_hashes("late") == set()
        assert db.owned_hashes("early") == {1}

    def test_owner_epoch_bumps_on_changes(self):
        db = HashDatabase()
        before = db.owner_epoch("a")
        db.record(1, "a", 0.0)
        after_claim = db.owner_epoch("a")
        assert after_claim > before
        db.record(1, "b", 1.0)
        # "b" never owned hash 1, so its epoch is untouched.
        assert db.owner_epoch("b") == 0
        db.remove_observation(1, "a")
        assert db.owner_epoch("a") > after_claim
        assert db.owner_epoch("b") > 0

    def test_hashes_of_reverse_index(self):
        db = HashDatabase()
        db.record(1, "a", 0.0)
        db.record(2, "a", 0.0)
        db.record(2, "b", 1.0)
        assert db.hashes_of("a") == {1, 2}
        assert db.hashes_of("b") == {2}
        db.discard_segment("a")
        assert db.hashes_of("a") == set()
        assert db.hashes_of("b") == {2}

    def test_observers_unordered_view(self):
        db = HashDatabase()
        db.record(1, "a", 2.0)
        db.record(1, "b", 1.0)
        assert set(db.observers(1)) == {"a", "b"}
        assert db.observers(99) == ()

    def test_recompute_matches_cached(self):
        db = HashDatabase()
        db.record(1, "a", 2.0)
        db.record(1, "b", 1.0)
        db.record(2, "c", 0.0)
        db.remove_observation(1, "b")
        for h in db.hashes():
            assert db.oldest_owner(h) == db.recompute_oldest_owner(h)
        db.check_invariants()

    def test_invariants_after_discard(self):
        db = HashDatabase()
        for h in range(10):
            db.record(h, "a", 0.0)
            if h % 2:
                db.record(h, "b", 1.0)
        db.discard_segment("a")
        db.check_invariants()
        for h in range(10):
            assert db.oldest_owner(h) == ("b" if h % 2 else None)


class TestSegmentRecord:
    def test_with_fingerprint(self):
        rec = record_for("s", "the original content of this tracked segment")
        new_fp = Fingerprinter(TINY_CONFIG).fingerprint("totally different words here now")
        updated = rec.with_fingerprint(new_fp, 9.0)
        assert updated.fingerprint is new_fp
        assert updated.last_updated == 9.0
        assert updated.segment_id == "s"
        assert rec.last_updated != 9.0  # original untouched

    def test_default_threshold(self):
        assert record_for("s", "text that is long enough for a fingerprint").threshold == 0.5
