"""Integration tests: the paper's §2 enterprise scenario end to end.

All flows run through the real stack — simulated browser, plug-in
interception, simulated services with network-only backends — so a
"blocked" assertion really means the bytes never reached the service.
"""

import pytest

from repro.plugin.ui import STATUS_ATTR, STATUS_VIOLATION

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT, EnterpriseFixture

EVALUATION = (
    "The candidate explained leader election tradeoffs clearly and "
    "proposed a sensible replication design under failure injection "
    "questioning during the final session."
)
GUIDELINES = (
    "Interviewers must never share internal rubric scores with anyone "
    "outside the hiring committee, and should record structured notes "
    "within one business day."
)


@pytest.fixture
def e():
    return EnterpriseFixture()


class TestScenario:
    def test_candidate_evaluation_blocked_from_wiki(self, e):
        """An interviewer accidentally copies a candidate evaluation
        from the Interview Tool to the all-employee wiki."""
        e.itool.add_note("jane", EVALUATION)
        e.browser.open(e.itool.candidate_url("jane"))
        assert not e.wiki.edit(e.browser.new_tab(), "Shared", EVALUATION)
        assert e.wiki.page_text("Shared") == ""

    def test_guidelines_blocked_from_docs(self, e):
        """A user pastes confidential interviewing guidelines from the
        wiki into a collaborative external document."""
        e.wiki.save_page("Hiring", GUIDELINES)
        e.browser.open(e.wiki.page_url("Hiring"))
        editor = e.docs.open_editor(e.browser.new_tab())
        assert not editor.paste(editor.new_paragraph(), GUIDELINES)
        assert e.docs.backend.get(editor.doc_id).paragraphs == []

    def test_modified_text_still_caught(self, e):
        """Removing a couple of sentences does not evade tracking."""
        long_secret = " ".join([EVALUATION, GUIDELINES, SECRET_TEXT])
        e.itool.add_note("jane", long_secret)
        e.browser.open(e.itool.candidate_url("jane"))
        # Keep ~2/3 of the original text.
        partial = " ".join([EVALUATION, GUIDELINES])
        assert not e.wiki.edit(e.browser.new_tab(), "Leak", partial)

    def test_heavily_rewritten_text_released(self, e):
        """Once text bears no resemblance, disclosure is allowed —
        imprecise tracking has no false positives here (paper §1)."""
        e.itool.add_note("jane", EVALUATION)
        e.browser.open(e.itool.candidate_url("jane"))
        rewritten = (
            "A completely new summary written from scratch mentioning "
            "neither design answers nor any of the original phrasing at all."
        )
        assert e.wiki.edit(e.browser.new_tab(), "Fresh", rewritten)

    def test_transitive_flow_blocked(self, e):
        """itool -> (suppressed) -> wiki -> docs: the second hop is
        still blocked because the wiki copy keeps its wiki tag."""
        e.itool.add_note("jane", EVALUATION)
        e.browser.open(e.itool.candidate_url("jane"))
        # Declassify ti for the wiki upload.
        blocked = e.wiki.edit(e.browser.new_tab(), "Notes", EVALUATION)
        assert not blocked
        for warning in list(e.plugin.warnings):
            e.plugin.suppress(warning.segment_id, "ti", "alice", "hiring committee ok")
        assert e.wiki.edit(e.browser.new_tab(), "Notes", EVALUATION)
        # Now viewing the wiki page labels the text {tw}; moving it on
        # to the external docs service is a fresh violation.
        e.browser.open(e.wiki.page_url("Notes"))
        editor = e.docs.open_editor(e.browser.new_tab())
        assert not editor.paste(editor.new_paragraph(), EVALUATION)

    def test_public_docs_text_flows_inward(self, e):
        """Text created in the untrusted service is public and may be
        copied into internal services (Figure 3, step 3)."""
        editor = e.docs.open_editor(e.browser.new_tab())
        editor.paste(editor.new_paragraph(), OTHER_TEXT)
        assert e.wiki.edit(e.browser.new_tab(), "FromDocs", OTHER_TEXT)

    def test_multi_paragraph_document_mixed_decision(self, e):
        """Only the sensitive paragraph is marked; the clean one passes."""
        e.wiki.save_page("Hiring", GUIDELINES)
        e.browser.open(e.wiki.page_url("Hiring"))
        editor = e.docs.open_editor(e.browser.new_tab())
        clean = editor.new_paragraph()
        assert editor.paste(clean, THIRD_TEXT)
        dirty = editor.new_paragraph()
        assert not editor.paste(dirty, GUIDELINES)
        assert dirty.get_attribute(STATUS_ATTR) == STATUS_VIOLATION
        assert clean.get_attribute(STATUS_ATTR) != STATUS_VIOLATION
        stored = e.docs.backend.get(editor.doc_id)
        assert [t for _pid, t in stored.paragraphs] == [THIRD_TEXT]

    def test_audit_trail_after_full_workflow(self, e):
        e.itool.add_note("jane", EVALUATION)
        e.browser.open(e.itool.candidate_url("jane"))
        e.wiki.edit(e.browser.new_tab(), "Notes", EVALUATION)
        for warning in list(e.plugin.warnings):
            e.plugin.suppress(warning.segment_id, "ti", "bob", "legal sign-off")
        e.wiki.edit(e.browser.new_tab(), "Notes", EVALUATION)
        events = e.model.audit.by_user("bob")
        assert events
        for event in events:
            assert event.tag.name == "ti"
            assert event.justification == "legal sign-off"
            assert event.target_service == e.wiki.origin

    def test_cross_tab_copy_paste(self, e):
        """The classic two-tab copy/paste: wiki tab and docs tab open
        simultaneously in one browser."""
        e.wiki.save_page("Hiring", GUIDELINES)
        wiki_tab = e.browser.open(e.wiki.page_url("Hiring"))
        docs_tab = e.browser.new_tab()
        editor = e.docs.open_editor(docs_tab)
        # "Copy" from the rendered wiki DOM, "paste" into the editor.
        copied = wiki_tab.document.get_elements_by_tag("p")[0].text_content()
        assert not editor.paste(editor.new_paragraph(), copied)
