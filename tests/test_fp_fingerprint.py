"""Tests for Fingerprint / Fingerprinter (S1-S4 end to end)."""

import pytest

from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import FingerprintConfig, PAPER_CONFIG, TINY_CONFIG
from repro.fingerprint.fingerprint import positioned_hashes_for
from repro.fingerprint.ngram import ngram_hashes
from repro.fingerprint.normalize import normalize
from repro.fingerprint.winnowing import select_winnowed

SAMPLE = (
    "Imprecise data flow tracking identifies data flows implicitly by "
    "detecting and quantifying the similarity between text fragments."
)


class TestFingerprinter:
    def test_deterministic(self):
        fp = Fingerprinter(TINY_CONFIG)
        assert fp.fingerprint(SAMPLE).hashes == fp.fingerprint(SAMPLE).hashes

    def test_formatting_invariance(self):
        # Normalisation means case/punctuation/spacing don't matter.
        fp = Fingerprinter(TINY_CONFIG)
        a = fp.fingerprint("Hello World, this is a test sentence!")
        b = fp.fingerprint("hello world THIS is a test sentence")
        assert a.hashes == b.hashes

    def test_short_text_empty_fingerprint(self):
        fp = Fingerprinter(PAPER_CONFIG)
        result = fp.fingerprint("tiny")
        assert result.is_empty()
        assert len(result) == 0

    def test_empty_text(self):
        fp = Fingerprinter(TINY_CONFIG)
        assert fp.fingerprint("").is_empty()

    def test_fast_path_matches_reference_pipeline(self):
        # The optimised fingerprint() must equal the step-by-step path.
        config = FingerprintConfig(ngram_size=6, window_size=4)
        fp = Fingerprinter(config)
        fast = fp.fingerprint(SAMPLE)
        reference = select_winnowed(ngram_hashes(normalize(SAMPLE), config), config)
        assert fast.hashes == {h.value for h in reference}
        assert [s.orig_start for s in fast.selections] == [
            h.orig_start for h in reference
        ]

    def test_fingerprint_size_roughly_linear(self):
        fp = Fingerprinter(TINY_CONFIG)
        short = fp.fingerprint(SAMPLE)
        long = fp.fingerprint(SAMPLE + " " + SAMPLE.replace("data", "info") * 3)
        assert len(long) > len(short)

    def test_config_property(self):
        fp = Fingerprinter(TINY_CONFIG)
        assert fp.config is TINY_CONFIG

    def test_default_config_is_paper_parameters(self):
        fp = Fingerprinter()
        assert fp.config.ngram_size == 15
        assert fp.config.window_size == 30
        assert fp.config.hash_bits == 32

    def test_document_fingerprint_covers_paragraphs(self):
        fp = Fingerprinter(TINY_CONFIG)
        paragraphs = [SAMPLE, "A completely different second paragraph about gardens."]
        doc = fp.fingerprint_document(paragraphs)
        p0 = fp.fingerprint(paragraphs[0])
        # Most of a paragraph's hashes appear in the document fingerprint
        # (boundaries may differ slightly where windows straddle the join).
        assert len(p0.hashes & doc.hashes) / len(p0.hashes) > 0.8


class TestFingerprintValue:
    def test_containment_identity(self):
        fp = Fingerprinter(TINY_CONFIG)
        f = fp.fingerprint(SAMPLE)
        assert f.containment_in(f) == 1.0

    def test_containment_disjoint(self):
        fp = Fingerprinter(TINY_CONFIG)
        a = fp.fingerprint(SAMPLE)
        b = fp.fingerprint("Totally unrelated gardening content about tomato plants and soil.")
        assert a.containment_in(b) == 0.0

    def test_containment_empty_is_zero(self):
        fp = Fingerprinter(PAPER_CONFIG)
        empty = fp.fingerprint("x")
        full = fp.fingerprint(SAMPLE)
        assert empty.containment_in(full) == 0.0

    def test_contains_operator(self):
        fp = Fingerprinter(TINY_CONFIG)
        f = fp.fingerprint(SAMPLE)
        some_hash = next(iter(f.hashes))
        assert some_hash in f
        assert -1 not in f

    def test_intersection(self):
        fp = Fingerprinter(TINY_CONFIG)
        a = fp.fingerprint(SAMPLE)
        b = fp.fingerprint(SAMPLE + " Plus an extra trailing sentence of filler words.")
        common = a.intersection(b)
        assert common
        assert common <= a.hashes and common <= b.hashes


class TestSpans:
    def test_spans_locate_shared_passage(self):
        fp = Fingerprinter(TINY_CONFIG)
        shared = "the confidential interviewing guidelines for distributed systems"
        source_text = f"Preamble before anything. {shared}. And an unrelated ending here."
        target_text = f"Completely new opening words. {shared}. Different closing text."
        source = fp.fingerprint(source_text)
        target = fp.fingerprint(target_text)
        matched = source.intersection(target)
        assert matched
        spans = source.spans_for(matched)
        recovered = " ".join(source_text[a:b] for a, b in spans)
        assert "interviewing guidelines" in recovered

    def test_spans_merged_and_ordered(self):
        fp = Fingerprinter(TINY_CONFIG)
        f = fp.fingerprint(SAMPLE)
        spans = f.spans_for(f.hashes)
        assert spans == sorted(spans)
        for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
            assert b1 < a2  # merged spans never touch or overlap

    def test_spans_empty_for_no_match(self):
        fp = Fingerprinter(TINY_CONFIG)
        f = fp.fingerprint(SAMPLE)
        assert f.spans_for(frozenset({-1})) == []


class TestPositionedHashesHelper:
    def test_exposes_prewinnowing_stream(self):
        config = FingerprintConfig(ngram_size=6, window_size=3)
        stream = positioned_hashes_for(SAMPLE, config)
        normalized_len = len(normalize(SAMPLE).text)
        assert len(stream) == normalized_len - config.ngram_size + 1
