"""Unit tests for the pipeline trace spans."""

import json
import threading

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSpan,
    current_tracer,
    span,
    tracing,
)
from repro.obs.trace import _NULL_SPAN
from repro.util.clock import LogicalClock


class TestTraceSpan:
    def test_duration_requires_closed_span(self):
        open_span = TraceSpan("x", start=1.0)
        with pytest.raises(ValueError, match="still open"):
            open_span.duration
        open_span.end = 3.5
        assert open_span.duration == 2.5

    def test_set_returns_self_and_accumulates(self):
        s = TraceSpan("x", start=0.0)
        assert s.set(a=1).set(b=2) is s
        assert s.attributes == {"a": 1, "b": 2}

    def test_walk_is_depth_first(self):
        root = TraceSpan("root", 0.0)
        a, b, c = TraceSpan("a", 1.0), TraceSpan("b", 2.0), TraceSpan("c", 3.0)
        root.children = [a, b]
        a.children = [c]
        assert [s.name for s in root.walk()] == ["root", "a", "c", "b"]


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=LogicalClock())
        with tracer.span("scan"):
            with tracer.span("fingerprint"):
                with tracer.span("normalize"):
                    pass
            with tracer.span("algorithm1"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "scan"
        assert [c.name for c in root.children] == ["fingerprint", "algorithm1"]
        assert root.children[0].children[0].name == "normalize"

    def test_logical_clock_gives_deterministic_timings(self):
        def run():
            tracer = Tracer(clock=LogicalClock())
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
            return tracer.to_json()

        assert run() == run()

    def test_sibling_roots_in_completion_order(self):
        tracer = Tracer(clock=LogicalClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_span_closed_even_on_exception(self):
        tracer = Tracer(clock=LogicalClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        assert tracer.roots[0].end is not None

    def test_export_shape_matches_schema(self):
        tracer = Tracer(clock=LogicalClock())
        with tracer.span("scan", file="x.txt") as sp:
            sp.set(chars=10)
        doc = tracer.export()
        assert doc["version"] == TRACE_SCHEMA_VERSION
        (root,) = doc["spans"]
        assert set(root) == {"name", "start", "duration", "attributes", "children"}
        assert root["attributes"] == {"file": "x.txt", "chars": 10}
        json.dumps(doc)  # JSON-ready

    def test_validator_accepts_export(self, tmp_path):
        import pathlib
        import sys

        tools = pathlib.Path(__file__).resolve().parent.parent / "tools"
        sys.path.insert(0, str(tools))
        try:
            from validate_trace import distinct_stages, validate
        finally:
            sys.path.remove(str(tools))

        tracer = Tracer(clock=LogicalClock())
        with tracer.span("scan"):
            with tracer.span("fingerprint"):
                pass
        schema = json.loads(
            (tools.parent / "docs" / "trace_schema.json").read_text()
        )
        doc = tracer.export()
        validate(doc, schema)  # must not raise
        assert distinct_stages(doc) == {"scan", "fingerprint"}


class TestModuleLevelSpan:
    def test_no_active_tracer_returns_shared_null_span(self):
        assert current_tracer() is None
        sp = span("anything", key="value")
        assert sp is _NULL_SPAN
        with sp as inner:
            inner.set(more=1)  # no-op, no error

    def test_tracing_scopes_activation(self):
        tracer = Tracer(clock=LogicalClock())
        with tracing(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
            with span("op") as sp:
                sp.set(done=True)
        assert current_tracer() is None
        assert tracer.roots[0].attributes == {"done": True}

    def test_threads_do_not_interleave_trees(self):
        tracer = Tracer(clock=LogicalClock())
        barrier = threading.Barrier(2)
        errors = []

        def worker(tag):
            try:
                with tracing(tracer):
                    with span(f"outer-{tag}"):
                        barrier.wait(timeout=10)
                        with span(f"inner-{tag}"):
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Each root holds exactly its own inner span, never the sibling's.
        assert len(tracer.roots) == 2
        for root in tracer.roots:
            tag = root.name.split("-")[1]
            assert [c.name for c in root.children] == [f"inner-{tag}"]
