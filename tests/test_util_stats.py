"""Tests for repro.util.stats."""

import pytest

from repro.util.stats import cdf_at, cdf_points, percentile, summarize


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_of_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_min_and_max(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_unsorted_input(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_p95(self):
        data = list(range(1, 101))
        assert percentile(data, 95) == pytest.approx(95.05)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)


class TestCdfPoints:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_sorted_fractions(self):
        points = cdf_points([3, 1, 2])
        assert points == [(1, pytest.approx(1 / 3)), (2, pytest.approx(2 / 3)), (3, 1.0)]

    def test_duplicates_collapse(self):
        points = cdf_points([1, 1, 2])
        assert points == [(1, pytest.approx(2 / 3)), (2, 1.0)]

    def test_last_fraction_is_one(self):
        assert cdf_points([5, 2, 8, 2])[-1][1] == 1.0


class TestCdfAt:
    def test_fraction_at_threshold(self):
        assert cdf_at([1, 2, 3, 4], 2) == 0.5

    def test_all_below(self):
        assert cdf_at([1, 2], 10) == 1.0

    def test_none_below(self):
        assert cdf_at([5, 6], 1) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_at([], 1)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0
        assert summary["median"] == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_accepts_generator(self):
        assert summarize(x for x in [1.0, 3.0])["mean"] == 2.0
