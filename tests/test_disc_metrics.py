"""Tests for disclosure metrics: raw, authoritative, threshold check."""

import pytest

from repro.disclosure.metrics import (
    authoritative_disclosure,
    authoritative_hashes,
    meets_threshold,
    raw_disclosure,
)
from repro.disclosure.store import HashDatabase, SegmentRecord
from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import TINY_CONFIG

FP = Fingerprinter(TINY_CONFIG)

TEXT_A = (
    "The annual security review covers every production service and the "
    "escalation procedures for each incident severity level."
)
TEXT_B = TEXT_A + " Additional commentary extends the review with deployment notes."
TEXT_C = "Entirely different prose about butterfly migration across the continent."


def make_record(segment_id, text, threshold=0.5):
    return SegmentRecord(segment_id=segment_id, fingerprint=FP.fingerprint(text), threshold=threshold)


class TestRawDisclosure:
    def test_identity_is_one(self):
        f = FP.fingerprint(TEXT_A)
        assert raw_disclosure(f, f) == 1.0

    def test_subset_full_disclosure(self):
        a = FP.fingerprint(TEXT_A)
        b = FP.fingerprint(TEXT_B)
        assert raw_disclosure(a, b) > 0.9

    def test_disjoint_is_zero(self):
        assert raw_disclosure(FP.fingerprint(TEXT_A), FP.fingerprint(TEXT_C)) == 0.0

    def test_asymmetric(self):
        a = FP.fingerprint(TEXT_A)
        b = FP.fingerprint(TEXT_B)
        # A is (almost) contained in B, but B is not contained in A.
        assert raw_disclosure(a, b) > raw_disclosure(b, a)

    def test_range(self):
        a = FP.fingerprint(TEXT_A)
        b = FP.fingerprint(TEXT_B)
        assert 0.0 <= raw_disclosure(b, a) <= 1.0


class TestAuthoritativeHashes:
    def test_sole_owner_owns_everything(self):
        db = HashDatabase()
        rec = make_record("a", TEXT_A)
        for h in rec.fingerprint.hashes:
            db.record(h, "a", 0.0)
        assert authoritative_hashes(rec, db) == rec.fingerprint.hashes

    def test_later_observer_owns_nothing_shared(self):
        db = HashDatabase()
        rec_a = make_record("a", TEXT_A)
        rec_b = make_record("b", TEXT_A)  # same content, observed later
        for h in rec_a.fingerprint.hashes:
            db.record(h, "a", 0.0)
        for h in rec_b.fingerprint.hashes:
            db.record(h, "b", 1.0)
        assert authoritative_hashes(rec_a, db) == rec_a.fingerprint.hashes
        assert authoritative_hashes(rec_b, db) == frozenset()

    def test_superset_owns_only_new_part(self):
        # Figure 7: B is a superset of A; B owns only its extra text.
        db = HashDatabase()
        rec_a = make_record("a", TEXT_A)
        rec_b = make_record("b", TEXT_B)
        for h in rec_a.fingerprint.hashes:
            db.record(h, "a", 0.0)
        for h in rec_b.fingerprint.hashes:
            db.record(h, "b", 1.0)
        owned = authoritative_hashes(rec_b, db)
        assert owned
        assert owned < rec_b.fingerprint.hashes
        assert not owned & rec_a.fingerprint.hashes


class TestAuthoritativeDisclosure:
    def test_figure7_scenario(self):
        """The overlap correction keeps B's disclosure into C below threshold."""
        db = HashDatabase()
        rec_a = make_record("a", TEXT_A, threshold=0.5)
        rec_b = make_record("b", TEXT_B, threshold=0.5)
        for h in rec_a.fingerprint.hashes:
            db.record(h, "a", 0.0)
        for h in rec_b.fingerprint.hashes:
            db.record(h, "b", 1.0)
        # C is another copy of A's text.
        c = FP.fingerprint(TEXT_A)
        assert authoritative_disclosure(rec_a, c, db) > 0.9
        # Raw containment would blame B too; authoritative does not.
        assert raw_disclosure(rec_b.fingerprint, c) > 0.5
        assert authoritative_disclosure(rec_b, c, db) < 0.5

    def test_empty_fingerprint_zero(self):
        db = HashDatabase()
        rec = make_record("tiny", "x")
        assert rec.fingerprint.is_empty()
        assert authoritative_disclosure(rec, FP.fingerprint(TEXT_A), db) == 0.0

    def test_denominator_is_full_fingerprint(self):
        # Even when a segment owns only half its hashes, the denominator
        # stays |F(source)| per §4.3.
        db = HashDatabase()
        rec_a = make_record("a", TEXT_A)
        rec_b = make_record("b", TEXT_B)
        for h in rec_a.fingerprint.hashes:
            db.record(h, "a", 0.0)
        for h in rec_b.fingerprint.hashes:
            db.record(h, "b", 1.0)
        score = authoritative_disclosure(rec_b, rec_b.fingerprint, db)
        owned = len(authoritative_hashes(rec_b, db))
        assert score == pytest.approx(owned / len(rec_b.fingerprint))


class TestMeetsThreshold:
    def test_at_threshold(self):
        assert meets_threshold(0.5, 0.5)

    def test_below(self):
        assert not meets_threshold(0.49, 0.5)

    def test_zero_threshold_requires_positive_score(self):
        assert not meets_threshold(0.0, 0.0)
        assert meets_threshold(0.001, 0.0)

    def test_threshold_one(self):
        assert meets_threshold(1.0, 1.0)
        assert not meets_threshold(0.999, 1.0)
