"""Fault-mode tests for the shared lookup service (paper §6.2).

Under injected lookup faults the client must degrade exactly as
configured: fail-closed blocks the upload with an audited
``lookup_unavailable`` event, fail-open allows it with a logged
warning, and the retry/backoff counters match the injected fault
schedule exactly (the injector is schedule-driven, so every number
below is forced, not approximate).
"""

import logging

import pytest

from repro.errors import LookupRejected, LookupTimeout
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin.enforcement import PluginMode, PolicyEnforcement
from repro.plugin.lookup import PolicyLookup
from repro.plugin.server import (
    DEGRADED_GRANULARITY,
    FailureMode,
    LookupClient,
    LookupServer,
)
from repro.plugin.crypto import UploadCipher
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.util.faults import Fault, FaultInjector

from conftest import OTHER_TEXT, SECRET_TEXT

SRC = "https://src.example.com"
DST = "https://dst.example.com"
SEGMENTS = [("d#p0", SECRET_TEXT)]


def make_lookup() -> PolicyLookup:
    policies = PolicyStore()
    policies.register_service(
        SRC, privilege=Label.of("s"), confidentiality=Label.of("s")
    )
    policies.register_service(DST)
    model = TextDisclosureModel(policies, TINY_CONFIG)
    model.observe(SRC, "doc-src", [("doc-src#p0", SECRET_TEXT)])
    return PolicyLookup(model)


def make_server(*faults: Fault) -> LookupServer:
    return LookupServer(
        make_lookup(), faults=FaultInjector(schedule=list(faults))
    )


class TestHealthyPath:
    def test_clean_lookup_round_trip(self):
        server = make_server()
        client = LookupClient(server)
        outcome = client.lookup(DST, "d", SEGMENTS)
        assert not outcome.degraded
        assert outcome.attempts == 1
        assert outcome.retries == 0
        assert outcome.faults == ()
        assert not outcome.decision.allowed  # the secret really violates
        allowed = client.lookup(DST, "d", [("d#p0", OTHER_TEXT)])
        assert allowed.decision.allowed
        assert server.stats()["server_served"] == 2

    def test_latency_within_budget_is_served(self):
        server = make_server(Fault.slow(0.05))
        client = LookupClient(server, timeout=0.2)
        outcome = client.lookup(DST, "d", SEGMENTS)
        assert not outcome.degraded
        assert outcome.latency == 0.05
        assert client.stats()["timeouts"] == 0

    def test_transient_faults_recovered_by_retry(self):
        server = make_server(Fault.error(503), Fault.drop(), Fault.none())
        client = LookupClient(server, max_retries=2, backoff=0.01)
        outcome = client.lookup(DST, "d", SEGMENTS)
        assert not outcome.degraded
        assert outcome.attempts == 3
        assert outcome.retries == 2
        assert outcome.faults == ("http-503", "timeout")
        assert outcome.waited == (0.01, 0.02)
        assert not outcome.decision.allowed
        stats = client.stats()
        assert stats["server_errors"] == 1
        assert stats["timeouts"] == 1
        assert stats["degraded"] == 0


class TestFailClosed:
    def test_timeouts_block_with_audited_event(self):
        server = make_server(Fault.drop(), Fault.slow(9.0), Fault.drop())
        client = LookupClient(
            server,
            timeout=0.1,
            max_retries=2,
            backoff=0.05,
            failure_mode=FailureMode.FAIL_CLOSED,
        )
        outcome = client.lookup(DST, "d", SEGMENTS)
        assert outcome.degraded
        assert not outcome.decision.allowed
        assert outcome.attempts == 3
        assert outcome.faults == ("timeout", "timeout", "timeout")
        assert outcome.waited == (0.05, 0.1)
        [violation] = outcome.decision.violations
        assert violation.granularity == DEGRADED_GRANULARITY
        # Audited LookupUnavailable event.
        audit = server.lookup.model.audit
        [event] = audit.degradations()
        assert event.kind == "lookup_unavailable"
        assert event.failure_mode == "fail-closed"
        assert event.service_id == DST
        assert event.attempts == 3
        assert event.faults == ("timeout", "timeout", "timeout")
        # Counters match the schedule exactly: 1 drop + 1 over-budget
        # latency + 1 drop, zero requests served.
        stats = server.stats()
        assert stats["server_requests"] == 3
        assert stats["server_dropped"] == 2
        assert stats["server_timed_out"] == 1
        assert stats["server_served"] == 0
        cstats = client.stats()
        assert cstats["timeouts"] == 3
        assert cstats["retries"] == 2
        assert cstats["degraded"] == 1
        assert cstats["fail_closed_blocked"] == 1
        assert cstats["fail_open_allowed"] == 0

    def test_5xx_block_with_audited_event(self):
        server = make_server(Fault.error(500), Fault.error(502))
        client = LookupClient(
            server, max_retries=1, failure_mode=FailureMode.FAIL_CLOSED
        )
        outcome = client.lookup(DST, "d", SEGMENTS)
        assert outcome.degraded
        assert not outcome.decision.allowed
        assert outcome.faults == ("http-500", "http-502")
        [event] = server.lookup.model.audit.degradations()
        assert event.faults == ("http-500", "http-502")
        assert server.stats()["server_rejected"] == 2
        assert client.stats()["server_errors"] == 2

    def test_enforce_mode_blocks_degraded_upload(self):
        server = make_server(Fault.drop())
        client = LookupClient(
            server, max_retries=0, failure_mode=FailureMode.FAIL_CLOSED
        )
        outcome = client.lookup(DST, "d", SEGMENTS)
        action = PolicyEnforcement(PluginMode.ENFORCE).enforce(
            outcome.decision, dict(SEGMENTS)
        )
        assert not action.proceed

    def test_encrypt_mode_blocks_degraded_upload(self):
        # There is no verdict saying which text violates, so ENCRYPT
        # cannot substitute ciphertext and must hold the upload.
        server = make_server(Fault.drop())
        client = LookupClient(
            server, max_retries=0, failure_mode=FailureMode.FAIL_CLOSED
        )
        outcome = client.lookup(DST, "d", SEGMENTS)
        action = PolicyEnforcement(
            PluginMode.ENCRYPT, UploadCipher(key="sixteen-byte-key")
        ).enforce(outcome.decision, dict(SEGMENTS))
        assert not action.proceed
        assert action.rewrites == {}


class TestFailOpen:
    def test_timeouts_allow_with_logged_warning(self, caplog):
        server = make_server(Fault.drop(), Fault.drop())
        client = LookupClient(
            server, max_retries=1, backoff=0.02, failure_mode=FailureMode.FAIL_OPEN
        )
        with caplog.at_level(logging.WARNING, logger="repro.plugin.server"):
            outcome = client.lookup(DST, "d", SEGMENTS)
        assert outcome.degraded
        assert outcome.decision.allowed
        assert outcome.waited == (0.02,)
        assert any("fail-open" in record.message for record in caplog.records)
        # Still audited: fail-open is a security-relevant act.
        [event] = server.lookup.model.audit.degradations()
        assert event.failure_mode == "fail-open"
        cstats = client.stats()
        assert cstats["fail_open_allowed"] == 1
        assert cstats["fail_closed_blocked"] == 0
        # Enforcement lets the degraded-allow through in every mode.
        action = PolicyEnforcement(PluginMode.ENFORCE).enforce(
            outcome.decision, dict(SEGMENTS)
        )
        assert action.proceed


class TestServerPrimitives:
    def test_drop_raises_timeout_before_engine(self):
        server = make_server(Fault.drop())
        before = server.stats()["engine_queries"]
        with pytest.raises(LookupTimeout):
            server.handle(DST, "d", SEGMENTS, timeout=0.1)
        # The dropped request never reached the shared engine.
        assert server.stats()["engine_queries"] == before
        assert server.stats()["server_served"] == 0

    def test_error_raises_rejected_with_status(self):
        server = make_server(Fault.error(502))
        with pytest.raises(LookupRejected) as exc_info:
            server.handle(DST, "d", SEGMENTS, timeout=0.1)
        assert exc_info.value.status == 502

    def test_observe_path_counts(self):
        server = make_server()
        server.observe(DST, "doc-new", [("doc-new#p0", OTHER_TEXT)])
        assert server.stats()["server_observes"] == 1

    def test_stats_expose_injector_and_lock_counters(self):
        server = make_server(Fault.drop())
        client = LookupClient(server, max_retries=0)
        client.lookup(DST, "d", SEGMENTS)
        stats = server.stats()
        assert stats["injected_drop"] == 1
        assert "lock_read_acquisitions" in stats
        assert "decision_cache_evictions" in stats

    def test_client_parameter_validation(self):
        server = make_server()
        with pytest.raises(ValueError):
            LookupClient(server, timeout=0.0)
        with pytest.raises(ValueError):
            LookupClient(server, max_retries=-1)
        with pytest.raises(ValueError):
            LookupClient(server, backoff_multiplier=0.5)

    def test_backoff_sleep_hook_receives_delays(self):
        server = make_server(Fault.drop(), Fault.drop(), Fault.drop())
        slept = []
        client = LookupClient(
            server,
            max_retries=2,
            backoff=0.01,
            backoff_multiplier=3.0,
            sleep=slept.append,
        )
        client.lookup(DST, "d", SEGMENTS)
        assert slept == [0.01, 0.03]
