"""Tests for the TextDisclosureModel: the paper's §3 scenarios.

The fixtures mirror Figure 1: an Interview Tool (tag ti), an internal
Wiki (tag tw), and an untrusted Docs service (no tags).
"""

import pytest

from repro.errors import PolicyError, SuppressionError
from repro.fingerprint.config import TINY_CONFIG
from repro.tdm import Label, PolicyStore, Tag, TextDisclosureModel
from repro.tdm.model import Suppression

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT

ITOOL = "https://itool.xyz.com"
WIKI = "https://xyz.com"
DOCS = "https://docs.example.com"


@pytest.fixture
def model():
    policies = PolicyStore()
    policies.register_service(ITOOL, privilege=Label.of("ti"), confidentiality=Label.of("ti"))
    policies.register_service(WIKI, privilege=Label.of("tw"), confidentiality=Label.of("tw"))
    policies.register_service(DOCS)
    return TextDisclosureModel(policies, TINY_CONFIG)


def seg(doc, index, text):
    return (f"{doc}#p{index}", text)


class TestObservation:
    def test_new_text_gets_service_confidentiality(self, model):
        labels = model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        assert labels["docA#p0"].explicit == frozenset({Tag("ti")})

    def test_untrusted_service_text_is_public(self, model):
        labels = model.observe(DOCS, "docG", [seg("docG", 0, OTHER_TEXT)])
        assert labels["docG#p0"].effective() == Label.of()

    def test_document_label_stored(self, model):
        labels = model.observe(WIKI, "docW", [seg("docW", 0, THIRD_TEXT)])
        assert labels["docW"].explicit == frozenset({Tag("tw")})

    def test_similar_text_inherits_implicit_tags(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        labels = model.observe(WIKI, "docB", [seg("docB", 0, SECRET_TEXT)])
        label = labels["docB#p0"]
        assert Tag("tw") in label.explicit
        assert Tag("ti") in label.implicit

    def test_locations_tracked(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        assert model.locations_of("docA#p0") == frozenset({ITOOL})


class TestFigure3Flows:
    """Default tag assignment (paper Figure 3)."""

    def test_interview_text_blocked_at_wiki(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        decision = model.check_upload(WIKI, "docB", [seg("docB", 0, SECRET_TEXT)])
        assert not decision.allowed
        offending = decision.violations[0].offending
        assert Tag("ti") in offending

    def test_docs_text_flows_to_wiki(self, model):
        model.observe(DOCS, "docG", [seg("docG", 0, OTHER_TEXT)])
        decision = model.check_upload(WIKI, "docB", [seg("docB", 0, OTHER_TEXT)])
        assert decision.allowed

    def test_interview_text_blocked_at_docs(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        decision = model.check_upload(DOCS, "docC", [seg("docC", 0, SECRET_TEXT)])
        assert not decision.allowed

    def test_fresh_text_allowed_anywhere(self, model):
        decision = model.check_upload(DOCS, "docC", [seg("docC", 0, THIRD_TEXT)])
        assert decision.allowed

    def test_wiki_text_back_to_wiki_allowed(self, model):
        model.observe(WIKI, "docW", [seg("docW", 0, THIRD_TEXT)])
        decision = model.check_upload(WIKI, "docW2", [seg("docW2", 0, THIRD_TEXT)])
        assert decision.allowed

    def test_violation_reports_sources(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        decision = model.check_upload(WIKI, "docB", [seg("docB", 0, SECRET_TEXT)])
        source_ids = {s.segment_id for v in decision.violations for s in v.sources}
        assert "docA#p0" in source_ids


class TestFigure4Suppression:
    """User tag suppression declassifies with an audit trail."""

    def test_suppression_allows_upload(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        suppression = Suppression.of("ti", "alice", "sharing approved by legal")
        decision = model.check_upload(
            WIKI,
            "docB",
            [seg("docB", 0, SECRET_TEXT)],
            suppressions={"docB#p0": [suppression], "docB": [suppression]},
        )
        assert decision.allowed

    def test_suppression_audited(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        suppression = Suppression.of("alice-user", "ti", "x")  # wrong arg order
        # Suppression.of(tag, user, justification) — build correctly:
        suppression = Suppression.of("ti", "alice", "approved")
        model.check_upload(
            WIKI,
            "docB",
            [seg("docB", 0, SECRET_TEXT)],
            suppressions={"docB#p0": [suppression]},
        )
        events = model.audit.by_user("alice")
        assert len(events) == 1
        assert events[0].tag == Tag("ti")
        assert events[0].justification == "approved"
        assert events[0].target_service == WIKI

    def test_suppressed_tag_stays_attached_after_commit(self, model):
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        suppression = Suppression.of("ti", "alice", "approved")
        decision = model.check_upload(
            WIKI,
            "docB",
            [seg("docB", 0, SECRET_TEXT)],
            suppressions={"docB#p0": [suppression], "docB": [suppression]},
        )
        model.commit_upload(WIKI, "docB", [seg("docB", 0, SECRET_TEXT)], decision)
        label = model.label_of("docB#p0")
        assert Tag("ti") in label.suppressed
        assert Tag("ti") in label.full().tags  # accountability retained

    def test_suppression_requires_attached_tag(self, model):
        suppression = Suppression.of("ghost", "alice", "does not apply")
        with pytest.raises(SuppressionError):
            model.check_upload(
                DOCS,
                "docC",
                [seg("docC", 0, THIRD_TEXT)],
                suppressions={"docC#p0": [suppression]},
            )

    def test_suppression_is_case_by_case(self, model):
        """A fresh copy of the source text must be declassified again."""
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        suppression = Suppression.of("ti", "alice", "approved once")
        decision = model.check_upload(
            WIKI, "docB", [seg("docB", 0, SECRET_TEXT)],
            suppressions={"docB#p0": [suppression], "docB": [suppression]},
        )
        assert decision.allowed
        # A different copy (new segment id) is still blocked.
        decision2 = model.check_upload(WIKI, "docB2", [seg("docB2", 0, SECRET_TEXT)])
        assert not decision2.allowed

    def test_suppression_requires_user_and_justification(self):
        with pytest.raises(SuppressionError):
            Suppression.of("ti", "", "reason")
        with pytest.raises(SuppressionError):
            Suppression.of("ti", "alice", "")


class TestFigure5CustomTags:
    """Custom tags restrict propagation; privileges back-propagate."""

    def test_custom_tag_blocks_otherwise_permitted_flow(self, model):
        # Admin permits wiki data in the Interview Tool.
        model.policies.register_service(
            ITOOL, privilege=Label.of("ti", "tw"), confidentiality=Label.of("ti")
        )
        model.observe(WIKI, "docW", [seg("docW", 0, THIRD_TEXT)])
        # Without the custom tag the flow is allowed...
        assert model.check_upload(ITOOL, "docI", [seg("docI", 0, THIRD_TEXT)]).allowed
        # ...but after the author protects the segment with tn it is not.
        model.allocate_custom_tag("tn", owner="alice")
        model.add_tag_to_segment("docW#p0", "tn")
        decision = model.check_upload(ITOOL, "docI", [seg("docI", 0, THIRD_TEXT)])
        assert not decision.allowed
        assert Tag("tn") in decision.violations[0].offending

    def test_privilege_back_propagates_to_storing_services(self, model):
        """Services already storing the segment receive tn in Lp (§3.1)."""
        model.observe(WIKI, "docW", [seg("docW", 0, THIRD_TEXT)])
        model.allocate_custom_tag("tn", owner="alice")
        model.add_tag_to_segment("docW#p0", "tn")
        assert Tag("tn") in model.policies.get(WIKI).privilege

    def test_wiki_still_accepts_its_own_protected_text(self, model):
        model.observe(WIKI, "docW", [seg("docW", 0, THIRD_TEXT)])
        model.allocate_custom_tag("tn", owner="alice")
        model.add_tag_to_segment("docW#p0", "tn")
        decision = model.check_upload(WIKI, "docW2", [seg("docW2", 0, THIRD_TEXT)])
        assert decision.allowed


class TestFigure6ImplicitTags:
    """Outdated tags must not propagate (paper Figure 6)."""

    @pytest.fixture
    def fig6_model(self):
        policies = PolicyStore()
        policies.register_service(
            ITOOL, privilege=Label.of("ti", "tw"), confidentiality=Label.of("ti")
        )
        policies.register_service(
            WIKI, privilege=Label.of("tw", "ti"), confidentiality=Label.of("tw")
        )
        policies.register_service(DOCS, privilege=Label.of("tw"))
        # The A-derived half is ~50% of B; thresholds below that
        # boundary keep the similarity link B -> C detectable.
        return TextDisclosureModel(
            policies, TINY_CONFIG, paragraph_threshold=0.3, document_threshold=0.3
        )

    def test_stale_tag_not_propagated(self, fig6_model):
        model = fig6_model
        # Step 0: A in the Interview Tool, B in the Wiki.
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        model.observe(WIKI, "docB", [seg("docB", 0, OTHER_TEXT)])
        # Step 1: the user appends A's text to B. B now discloses A and
        # inherits ti *implicitly*; Lp(wiki) includes ti so it uploads.
        b_text = OTHER_TEXT + " " + SECRET_TEXT
        decision = model.check_upload(WIKI, "docB", [seg("docB", 0, b_text)])
        assert decision.allowed
        model.commit_upload(WIKI, "docB", [seg("docB", 0, b_text)], decision)
        label_b = model.label_of("docB#p0")
        assert Tag("ti") in label_b.implicit
        assert Tag("tw") in label_b.explicit
        # Step 2: A is edited beyond recognition.
        model.observe(ITOOL, "docA", [seg("docA", 0, THIRD_TEXT)])
        # Step 3: the A-derived half of B is copied to Docs (Lp={tw}).
        decision = model.check_upload(DOCS, "docC", [seg("docC", 0, SECRET_TEXT)])
        # C discloses only from B now; B propagates tw (explicit) but
        # never its implicit ti, so the upload is permitted.
        assert decision.allowed, [v.describe() for v in decision.violations]
        label_c = decision.labels["docC#p0"]
        assert Tag("ti") not in label_c.effective().tags
        assert Tag("tw") in label_c.implicit

    def test_implicit_tag_still_checked_at_target(self, fig6_model):
        """Implicit tags do gate the segment itself (only onward
        propagation is cut)."""
        model = fig6_model
        model.observe(ITOOL, "docA", [seg("docA", 0, SECRET_TEXT)])
        # Docs has Lp={tw}: text disclosing A (implicit ti) must not go.
        decision = model.check_upload(DOCS, "docC", [seg("docC", 0, SECRET_TEXT)])
        assert not decision.allowed


class TestCommitUpload:
    def test_commit_wrong_service_rejected(self, model):
        decision = model.check_upload(DOCS, "d", [seg("d", 0, THIRD_TEXT)])
        with pytest.raises(PolicyError):
            model.commit_upload(WIKI, "d", [seg("d", 0, THIRD_TEXT)], decision)

    def test_commit_records_location(self, model):
        paragraphs = [seg("d", 0, THIRD_TEXT)]
        decision = model.check_upload(DOCS, "d", paragraphs)
        model.commit_upload(DOCS, "d", paragraphs, decision)
        assert DOCS in model.locations_of("d#p0")

    def test_committed_text_becomes_known_source(self, model):
        paragraphs = [seg("w", 0, THIRD_TEXT)]
        decision = model.check_upload(WIKI, "w", paragraphs)
        model.commit_upload(WIKI, "w", paragraphs, decision)
        report = model.tracker.check_document("probe", [seg("probe", 0, THIRD_TEXT)])
        assert report.disclosing
