"""Tests for the synthetic Wikipedia revision corpus."""

import pytest

from repro.datasets.wikipedia import (
    STABLE_TITLES,
    VOLATILE_TITLES,
    WikipediaCorpus,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def corpus():
    return WikipediaCorpus.generate(n_revisions=20, seed=7)


class TestGeneration:
    def test_named_articles_present(self, corpus):
        titles = {a.title for a in corpus}
        assert set(STABLE_TITLES) <= titles
        assert set(VOLATILE_TITLES) <= titles

    def test_revision_count(self, corpus):
        assert all(len(a.revisions) == 20 for a in corpus)

    def test_deterministic(self):
        a = WikipediaCorpus.generate(n_revisions=5, seed=1)
        b = WikipediaCorpus.generate(n_revisions=5, seed=1)
        assert a.by_title("Chicago").latest.text() == b.by_title("Chicago").latest.text()

    def test_seed_changes_content(self):
        a = WikipediaCorpus.generate(n_revisions=5, seed=1)
        b = WikipediaCorpus.generate(n_revisions=5, seed=2)
        assert a.by_title("Chicago").base.text() != b.by_title("Chicago").base.text()

    def test_extra_articles(self):
        corpus = WikipediaCorpus.generate(n_extra_articles=4, n_revisions=3)
        assert len(corpus) == 12

    def test_minimum_revisions_enforced(self):
        with pytest.raises(DatasetError):
            WikipediaCorpus.generate(n_revisions=1)

    def test_revision_indices_sequential(self, corpus):
        article = corpus.by_title("C++")
        assert [r.index for r in article.revisions] == list(range(20))


class TestRegimes:
    def test_stable_articles_barely_change(self, corpus):
        for article in corpus.stable_articles():
            assert article.relative_length_change() < 0.5

    def test_volatile_articles_change_more(self, corpus):
        stable_max = max(
            a.relative_length_change() for a in corpus.stable_articles()
        )
        volatile_mean = sum(
            a.relative_length_change() for a in corpus.volatile_articles()
        ) / len(corpus.volatile_articles())
        assert volatile_mean > stable_max

    def test_stable_base_paragraphs_survive(self, corpus):
        article = corpus.by_title("IP address")
        base_pars = set(article.base.paragraphs)
        latest_pars = set(article.latest.paragraphs)
        surviving = base_pars & latest_pars
        assert len(surviving) >= len(base_pars) * 0.5

    def test_volatility_labels(self, corpus):
        assert corpus.by_title("Chicago").volatility == "stable"
        assert corpus.by_title("Dementia").volatility == "volatile"


class TestAccessors:
    def test_by_title_unknown(self, corpus):
        with pytest.raises(DatasetError):
            corpus.by_title("Nonexistent")

    def test_totals_positive(self, corpus):
        assert corpus.total_paragraphs() > 0
        assert corpus.total_bytes() > 0

    def test_revision_length(self, corpus):
        revision = corpus.by_title("Chicago").base
        assert revision.length() == len(revision.text())
