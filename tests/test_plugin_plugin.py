"""End-to-end tests for the BrowserFlow plug-in."""

import pytest

from repro.plugin import PluginMode, UploadCipher
from repro.plugin.ui import STATUS_ATTR, STATUS_VIOLATION

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT, EnterpriseFixture


class TestDocsInterception:
    def test_wiki_text_blocked_from_docs(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))  # plugin ingests + labels

        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        delivered = editor.paste(par, SECRET_TEXT)
        assert not delivered
        assert e.docs.backend.get(editor.doc_id).paragraphs == []
        assert e.plugin.warnings

    def test_fresh_text_allowed_into_docs(self, enterprise):
        e = enterprise
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert editor.paste(par, THIRD_TEXT)
        assert e.docs.backend.get(editor.doc_id).paragraphs[0][1] == THIRD_TEXT

    def test_violating_paragraph_marked_red(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        editor.paste(par, SECRET_TEXT)
        assert par.get_attribute(STATUS_ATTR) == STATUS_VIOLATION

    def test_clean_paragraph_not_marked(self, enterprise):
        e = enterprise
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        editor.paste(par, OTHER_TEXT)
        assert par.get_attribute(STATUS_ATTR) != STATUS_VIOLATION

    def test_warning_identifies_offending_tag_and_source(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        editor.paste(editor.new_paragraph(), SECRET_TEXT)
        warning = e.plugin.warnings[0]
        assert "tw" in warning.offending
        assert any("Guidelines" in s for s in warning.source_ids)

    def test_response_times_recorded(self, enterprise):
        e = enterprise
        editor = e.docs.open_editor(e.browser.new_tab())
        editor.paste(editor.new_paragraph(), OTHER_TEXT)
        assert e.plugin.response_times
        assert all(t >= 0 for t in e.plugin.response_times)

    def test_typing_uses_decision_cache(self, enterprise):
        e = enterprise
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        editor.type_text(par, OTHER_TEXT)
        stats = e.plugin.stats()
        assert stats["cache_hits"] > 0

    def test_docs_to_docs_copy_allowed(self, enterprise):
        e = enterprise
        editor1 = e.docs.open_editor(e.browser.new_tab())
        editor1.paste(editor1.new_paragraph(), OTHER_TEXT)
        editor2 = e.docs.open_editor(e.browser.new_tab())
        assert editor2.paste(editor2.new_paragraph(), OTHER_TEXT)


class TestFormInterception:
    def test_interview_note_blocked_at_wiki(self, enterprise):
        e = enterprise
        e.itool.add_note("jane", SECRET_TEXT)
        e.browser.open(e.itool.candidate_url("jane"))  # ingest + label {ti}
        ok = e.wiki.edit(e.browser.new_tab(), "Notes", SECRET_TEXT)
        assert not ok
        assert e.wiki.page_text("Notes") == ""
        assert any("ti" in w.offending for w in e.plugin.warnings)

    def test_wiki_text_back_to_wiki_allowed(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guide", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guide"))
        ok = e.wiki.edit(e.browser.new_tab(), "Copy", SECRET_TEXT)
        assert ok
        assert e.wiki.page_text("Copy") == SECRET_TEXT

    def test_fresh_note_to_interview_tool_allowed(self, enterprise):
        e = enterprise
        ok = e.itool.submit_note(e.browser.new_tab(), "jane", THIRD_TEXT)
        assert ok
        assert e.itool.notes_for("jane") == [THIRD_TEXT]

    def test_interview_note_blocked_from_docs_via_form_path(self, enterprise):
        """Interview text must not reach the wiki even via multiple hops
        of the same form API."""
        e = enterprise
        e.itool.add_note("jane", SECRET_TEXT)
        e.browser.open(e.itool.candidate_url("jane"))
        # Direct hop itool -> wiki blocked above; also check the docs
        # service is protected through its AJAX path after form ingest.
        editor = e.docs.open_editor(e.browser.new_tab())
        assert not editor.paste(editor.new_paragraph(), SECRET_TEXT)


class TestSuppressionOverride:
    def test_override_then_upload_succeeds(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert not editor.paste(par, SECRET_TEXT)

        # The user reviews the warnings and declassifies both the
        # paragraph and the document segment.
        for warning in list(e.plugin.warnings):
            e.plugin.suppress(
                warning.segment_id, "tw", "alice", "cleared by communications team"
            )
        assert editor.set_paragraph_text(par, SECRET_TEXT)
        assert e.docs.backend.get(editor.doc_id).paragraphs[0][1] == SECRET_TEXT

    def test_override_recorded_in_audit_log(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        editor.paste(par, SECRET_TEXT)
        for warning in list(e.plugin.warnings):
            e.plugin.suppress(warning.segment_id, "tw", "alice", "approved")
        editor.set_paragraph_text(par, SECRET_TEXT)
        events = e.model.audit.by_user("alice")
        assert events
        assert all(event.tag.name == "tw" for event in events)


class TestAdvisoryMode:
    def test_violation_warned_but_delivered(self, enterprise_advisory):
        e = enterprise_advisory
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert editor.paste(par, SECRET_TEXT)  # delivered
        assert e.docs.backend.get(editor.doc_id).paragraphs
        warned = [w for w in e.plugin.warnings if w.proceeded]
        assert warned


class TestEncryptMode:
    def test_violating_upload_encrypted(self):
        e = EnterpriseFixture(mode=PluginMode.ENCRYPT)
        cipher = UploadCipher("org-secret")
        e.plugin.enforcement._cipher = cipher
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert editor.paste(par, SECRET_TEXT)  # goes through, encrypted
        stored = e.docs.backend.get(editor.doc_id).paragraphs[0][1]
        assert UploadCipher.is_encrypted(stored)
        assert cipher.decrypt(stored) == SECRET_TEXT

    def test_clean_upload_stays_plain(self):
        e = EnterpriseFixture(mode=PluginMode.ENCRYPT)
        e.plugin.enforcement._cipher = UploadCipher("org-secret")
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        editor.paste(par, THIRD_TEXT)
        assert e.docs.backend.get(editor.doc_id).paragraphs[0][1] == THIRD_TEXT

    def test_encrypted_form_upload(self):
        e = EnterpriseFixture(mode=PluginMode.ENCRYPT)
        cipher = UploadCipher("org-secret")
        e.plugin.enforcement._cipher = cipher
        e.itool.add_note("jane", SECRET_TEXT)
        e.browser.open(e.itool.candidate_url("jane"))
        ok = e.wiki.edit(e.browser.new_tab(), "Notes", SECRET_TEXT)
        assert ok
        stored = e.wiki.page_text("Notes")
        assert UploadCipher.is_encrypted(stored)
        assert cipher.decrypt(stored) == SECRET_TEXT


class TestIngestion:
    def test_wiki_page_labelled_on_load(self, enterprise):
        e = enterprise
        e.wiki.save_page("Data", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Data"))
        # Some paragraph segment now carries tw.
        labelled = [
            sid
            for sid in e.model.tracker.paragraphs.segment_db.ids()
            if "tw" in e.model.label_of(sid).effective().names()
        ]
        assert labelled

    def test_docs_page_reingest_on_reopen(self, enterprise):
        e = enterprise
        editor = e.docs.open_editor(e.browser.new_tab())
        editor.paste(editor.new_paragraph(), OTHER_TEXT)
        doc_id = editor.doc_id
        # Re-open in a fresh tab: paragraphs ingested from rendered DOM.
        e.docs.open_editor(e.browser.new_tab(), doc_id)
        qualified = e.plugin.qualify(e.docs.origin, doc_id)
        assert e.model.tracker.documents.segment_db.find(qualified) is not None

    def test_stats_shape(self, enterprise):
        stats = enterprise.plugin.stats()
        assert set(stats) == {
            "decisions",
            "warnings",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "delta_checks",
            "delta_builds",
            "delta_edits",
        }


class TestEditingFeedback:
    def test_red_mark_while_typing_sensitive_text(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        # Type the secret; interception blocks sync but the mutation
        # observer still marks the paragraph as the text accumulates.
        editor.type_text(par, SECRET_TEXT)
        assert par.get_attribute(STATUS_ATTR) == STATUS_VIOLATION

    def test_mark_cleared_after_rewrite(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        editor.paste(par, SECRET_TEXT)
        assert par.get_attribute(STATUS_ATTR) == STATUS_VIOLATION
        editor.set_paragraph_text(par, THIRD_TEXT)
        assert par.get_attribute(STATUS_ATTR) != STATUS_VIOLATION


class TestDeltaInterception:
    def test_typed_secret_blocked_despite_fragmented_wire(self, enterprise):
        """Per-keystroke deltas never show the full secret on the wire;
        the plug-in resolves the paragraph text from the DOM and still
        blocks the flow (paper §5.2)."""
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        delivered = editor.type_text(par, SECRET_TEXT)
        # The early keystrokes pass (too short to fingerprint); once the
        # text resembles the source, every further delta is blocked.
        assert delivered < len(SECRET_TEXT)
        stored = e.docs.backend.get(editor.doc_id).find_paragraph(
            editor.paragraph_id(par)
        )
        assert stored is None or SECRET_TEXT not in stored

    def test_delete_delta_checked_against_dom_state(self, enterprise):
        """A delete delta carries no text on the wire, yet it is still
        gated: the check runs on the paragraph's post-delete DOM state,
        which remains similar to the source."""
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert not editor.paste(par, SECRET_TEXT)
        # Trimming a few trailing characters leaves the paragraph just
        # as sensitive; the delete delta must be blocked too.
        assert not editor.delete_text(par, len(SECRET_TEXT) - 5, 5)
        assert e.docs.backend.get(editor.doc_id).paragraphs == []

    def test_encrypt_mode_rewrites_delta_to_full_ciphertext(self):
        from repro.plugin import PluginMode, UploadCipher

        e = EnterpriseFixture(mode=PluginMode.ENCRYPT)
        cipher = UploadCipher("org-secret")
        e.plugin.enforcement._cipher = cipher
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert editor.paste(par, SECRET_TEXT)  # insert delta, rewritten
        stored = e.docs.backend.get(editor.doc_id).find_paragraph(
            editor.paragraph_id(par)
        )
        assert UploadCipher.is_encrypted(stored)
        assert cipher.decrypt(stored) == SECRET_TEXT


class TestPluginLifecycle:
    def test_detach_stops_interception(self, enterprise):
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert not editor.paste(par, SECRET_TEXT)  # protected while attached
        e.plugin.detach()
        par2 = editor.new_paragraph()
        assert editor.paste(par2, SECRET_TEXT)  # unprotected after detach

    def test_detach_stops_future_page_hooks(self, enterprise):
        e = enterprise
        e.plugin.detach()
        e.wiki.save_page("Later", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Later"))
        # No ingestion happened: nothing tracked for that page.
        tracked = [
            sid for sid in e.model.tracker.paragraphs.segment_db.ids()
            if "Later" in sid
        ]
        assert tracked == []

    def test_detach_idempotent(self, enterprise):
        enterprise.plugin.detach()
        enterprise.plugin.detach()  # must not raise

    def test_warning_listener_invoked(self, enterprise):
        e = enterprise
        events = []
        e.plugin.on_warning(events.append)
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        editor = e.docs.open_editor(e.browser.new_tab())
        editor.paste(editor.new_paragraph(), SECRET_TEXT)
        assert events
        assert events[0].offending == ("tw",)
        assert events == e.plugin.warnings[: len(events)]


class TestExtensionPoints:
    def test_sync_parser_enables_blocking_for_unknown_protocol(self, enterprise):
        """A custom sync parser turns an opaque XHR body into a gated
        upload (the §5.2 extension path)."""
        import json

        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))

        def parser(service_id, payload):
            if "custom_field" in payload:
                return ("custom-doc", payload["custom_id"], payload["custom_field"])
            return None

        e.plugin.register_sync_parser(parser)
        tab = e.browser.new_tab()
        e.docs.open_editor(tab)
        xhr = tab.window.new_xhr()
        xhr.open("POST", e.docs.url("/sync"))
        body = json.dumps({"custom_id": "c1", "custom_field": SECRET_TEXT})
        from repro.errors import RequestBlocked

        with pytest.raises(RequestBlocked):
            xhr.send(body)

    def test_childlist_inserted_paragraph_checked(self, enterprise):
        """A paragraph inserted fully formed (one childList mutation)
        is still checked and marked by the mutation observer."""
        e = enterprise
        e.wiki.save_page("Guidelines", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("Guidelines"))
        tab = e.browser.new_tab()
        e.docs.open_editor(tab)
        document = tab.document
        editor_el = document.get_element_by_id("editor")
        # Build the card off-document with text, then insert it whole.
        par = document.create_element(
            "div", {"class": "kix-paragraph", "data-par-id": "external-p1"}
        )
        par.set_text(SECRET_TEXT)
        editor_el.append_child(par)
        assert par.get_attribute(STATUS_ATTR) == STATUS_VIOLATION
