"""Failure injection and edge cases across the stack."""

import json

import pytest

from repro.browser.http import HttpRequest
from repro.errors import RequestBlocked
from repro.fingerprint.config import PAPER_CONFIG
from repro.plugin import BrowserFlowPlugin
from repro.tdm import PolicyStore, TextDisclosureModel

from conftest import SECRET_TEXT, EnterpriseFixture


@pytest.fixture
def e():
    return EnterpriseFixture()


class TestShortText:
    def test_short_paragraph_false_negative(self, e):
        """Paragraphs too short to fingerprint are the paper's known
        systematic false-negative class (§6.1): they pass unchecked."""
        e.wiki.save_page("Pin", "x9!")
        e.browser.open(e.wiki.page_url("Pin"))
        editor = e.docs.open_editor(e.browser.new_tab())
        assert editor.paste(editor.new_paragraph(), "x9!")

    def test_empty_paragraph_ignored(self, e):
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert editor.set_paragraph_text(par, "")

    def test_whitespace_only_document(self, e):
        assert e.wiki.edit(e.browser.new_tab(), "Blank", "   \n\n   ")


class TestMalformedTraffic:
    def test_non_json_xhr_passes_through(self, e):
        """Requests that carry no user text are not policy-checked."""
        tab = e.browser.new_tab()
        e.docs.open_editor(tab)
        xhr = tab.window.new_xhr()
        xhr.open("POST", e.docs.url("/create"))
        response = xhr.send("A Title")
        assert response.ok

    def test_json_without_text_passes_through(self, e):
        tab = e.browser.new_tab()
        editor = e.docs.open_editor(tab)
        xhr = tab.window.new_xhr()
        xhr.open("POST", e.docs.url("/sync"))
        body = json.dumps({"doc_id": editor.doc_id, "op": "delete_paragraph",
                           "par_id": "ghost"})
        assert xhr.send(body).ok

    def test_sync_with_non_string_text_passes_to_backend_validation(self, e):
        tab = e.browser.new_tab()
        editor = e.docs.open_editor(tab)
        xhr = tab.window.new_xhr()
        xhr.open("POST", e.docs.url("/sync"))
        body = json.dumps(
            {"doc_id": editor.doc_id, "op": "set_paragraph",
             "par_id": "p", "text": 42}
        )
        # The plug-in ignores it (no string text); the backend stores it
        # or rejects it — either way no crash in the middleware.
        xhr.send(body)


class TestServiceEvasion:
    def test_direct_backend_write_bypasses_plugin(self, e):
        """A service that takes data outside the browser evades the
        middleware — the paper's acknowledged limitation (§4.4). The
        test documents the boundary rather than pretending otherwise."""
        e.wiki.save_page("Direct", SECRET_TEXT)  # server-side write
        assert e.wiki.page_text("Direct") == SECRET_TEXT
        assert not e.plugin.warnings

    def test_unknown_service_defaults_untrusted(self, e):
        """A never-registered origin gets Lp = {}: tagged data is
        blocked rather than leaked."""
        from repro.services import ForumService

        rogue = ForumService(origin="https://rogue.example.com", name="Rogue")
        e.network.register(rogue)
        e.itool.add_note("jane", SECRET_TEXT)
        e.browser.open(e.itool.candidate_url("jane"))
        assert not rogue.post(e.browser.new_tab(), "t", SECRET_TEXT)


class TestPluginRobustness:
    def test_page_without_service_ignored(self):
        """A tab whose page has no bound service must not crash hooks."""
        model = TextDisclosureModel(PolicyStore(), PAPER_CONFIG)
        plugin = BrowserFlowPlugin(model)

        class FakePage:
            service = None
            url = "about:blank"

        class FakeTab:
            page = FakePage()

        plugin._on_page(FakeTab())  # no exception
        assert plugin.warnings == []

    def test_blocked_xhr_leaves_editor_usable(self, e):
        e.wiki.save_page("G", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("G"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert not editor.paste(par, SECRET_TEXT)
        # The user keeps editing; clean text goes through afterwards.
        assert editor.set_paragraph_text(
            par, "A fresh rewrite that no longer borrows original phrasing at all."
        )

    def test_repeated_blocking_stable(self, e):
        e.wiki.save_page("G", SECRET_TEXT)
        e.browser.open(e.wiki.page_url("G"))
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        for _ in range(3):
            assert not editor.set_paragraph_text(par, SECRET_TEXT)
        assert e.docs.backend.get(editor.doc_id).paragraphs == []

    def test_observer_detach_on_unload(self, e):
        """Navigating a tab away must not keep stale observers failing."""
        tab = e.browser.new_tab()
        editor = e.docs.open_editor(tab)
        editor.new_paragraph("hello world paragraph for observer test")
        # Navigate the same tab elsewhere; old document is dropped.
        e.browser.open(e.wiki.page_url("Elsewhere"))
        # Editing the orphaned document's DOM still works.
        par = editor.paragraph_elements()[0]
        par.set_text("still editable without exceptions")


class TestNetworkFailures:
    def test_backend_error_surfaces(self, e):
        tab = e.browser.new_tab()
        e.docs.open_editor(tab)
        xhr = tab.window.new_xhr()
        xhr.open("POST", e.docs.url("/sync"))
        response = xhr.send(json.dumps({"doc_id": "ghost", "op": "set_paragraph",
                                        "par_id": "p", "text": "hello there friend"}))
        assert response.status == 404

    def test_unknown_origin_502(self, e):
        response = e.network.deliver(HttpRequest("POST", "https://void.example/x"))
        assert response.status == 502
