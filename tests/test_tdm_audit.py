"""Tests for the suppression audit log."""

from repro.tdm.audit import AuditLog, SuppressionEvent
from repro.tdm.tags import Tag


def event(user="alice", tag="ti", segment="s1", just="needed", ts=1.0, svc=None):
    return SuppressionEvent(
        user=user,
        tag=Tag(tag),
        segment_id=segment,
        justification=just,
        timestamp=ts,
        target_service=svc,
    )


class TestAuditLog:
    def test_record_and_len(self):
        log = AuditLog()
        log.record(event())
        assert len(log) == 1

    def test_iteration_in_order(self):
        log = AuditLog()
        log.record(event(ts=1.0))
        log.record(event(ts=2.0))
        assert [e.timestamp for e in log] == [1.0, 2.0]

    def test_by_user(self):
        log = AuditLog()
        log.record(event(user="alice"))
        log.record(event(user="bob"))
        assert len(log.by_user("alice")) == 1
        assert log.by_user("carol") == []

    def test_by_tag(self):
        log = AuditLog()
        log.record(event(tag="ti"))
        log.record(event(tag="tw"))
        assert [e.tag.name for e in log.by_tag(Tag("ti"))] == ["ti"]

    def test_by_segment(self):
        log = AuditLog()
        log.record(event(segment="s1"))
        log.record(event(segment="s2"))
        assert len(log.by_segment("s2")) == 1

    def test_events_returns_copy(self):
        log = AuditLog()
        log.record(event())
        events = log.events()
        events.clear()
        assert len(log) == 1

    def test_event_fields(self):
        e = event(user="u", tag="t", segment="seg", just="why", ts=5.0, svc="svc")
        assert e.user == "u"
        assert e.justification == "why"
        assert e.target_service == "svc"
