"""Tests for the fleet workload generator (eval/workload.py).

The statistical checks pin the ZipfSampler to its advertised law: the
empirical rank-frequency curve of many draws must fall on a log-log
line whose slope is the configured exponent, and the head of the
distribution must carry exactly the analytic mass.
"""

import math
import random

import pytest

from repro.eval.workload import (
    EXCLUSIVE_KINDS,
    BurstWindows,
    FleetConfig,
    ZipfSampler,
    arrival_times,
    generate_schedule,
)

SEED = "workload-tests"


class TestZipfSampler:
    def test_seeded_determinism(self):
        a = ZipfSampler(50, 1.1, random.Random(SEED))
        b = ZipfSampler(50, 1.1, random.Random(SEED))
        assert [a.sample() for _ in range(500)] == [
            b.sample() for _ in range(500)
        ]

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(40, 1.3, random.Random(SEED))
        assert math.isclose(
            sum(sampler.probability(k) for k in range(40)), 1.0
        )

    def test_rank_frequency_slope_matches_exponent(self):
        """Least-squares log-log slope of the head ranks ≈ -exponent."""
        exponent = 1.1
        sampler = ZipfSampler(100, exponent, random.Random(SEED))
        counts = [0] * 100
        n_draws = 60_000
        for _ in range(n_draws):
            counts[sampler.sample()] += 1
        # Head ranks only: the tail is noisy at any feasible sample size.
        xs, ys = [], []
        for rank in range(12):
            assert counts[rank] > 0, f"head rank {rank} never drawn"
            xs.append(math.log(rank + 1))
            ys.append(math.log(counts[rank] / n_draws))
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        slope = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        ) / sum((x - mean_x) ** 2 for x in xs)
        assert slope == pytest.approx(-exponent, abs=0.12)

    def test_top_rank_mass(self):
        """Empirical top-1 mass within a few percent of 1/H_n(s)."""
        exponent = 1.2
        n = 64
        sampler = ZipfSampler(n, exponent, random.Random(SEED))
        analytic = 1.0 / sum((k + 1) ** -exponent for k in range(n))
        assert sampler.probability(0) == pytest.approx(analytic)
        n_draws = 40_000
        hits = sum(sampler.sample() == 0 for _ in range(n_draws))
        assert hits / n_draws == pytest.approx(analytic, abs=0.02)

    def test_skew_orders_the_ranks(self):
        sampler = ZipfSampler(30, 1.5, random.Random(SEED))
        counts = [0] * 30
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        assert counts[0] > counts[4] > counts[20]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(SEED))
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5, random.Random(SEED))
        sampler = ZipfSampler(10, 1.0, random.Random(SEED))
        with pytest.raises(IndexError):
            sampler.probability(10)


class TestBurstWindows:
    def test_membership_deterministic_and_order_independent(self):
        probes = [x * 0.37 for x in range(200)]
        forward = BurstWindows(8.0, 2.0, random.Random(SEED))
        backward = BurstWindows(8.0, 2.0, random.Random(SEED))
        want = [forward.in_burst(t) for t in probes]
        got = list(reversed([backward.in_burst(t) for t in reversed(probes)]))
        assert want == got
        assert any(want) and not all(want)

    def test_zero_duration_never_bursts(self):
        windows = BurstWindows(5.0, 0.0, random.Random(SEED))
        assert not any(windows.in_burst(t * 0.5) for t in range(100))

    def test_duration_bound_enforced(self):
        with pytest.raises(ValueError):
            BurstWindows(4.0, 3.0, random.Random(SEED))


class TestArrivals:
    def test_deterministic_and_monotone(self):
        config = FleetConfig(sessions=200, seed=SEED)
        a = arrival_times(config)
        b = arrival_times(config)
        assert a == b
        assert len(a) == 200
        assert all(later > earlier for earlier, later in zip(a, a[1:]))

    def test_bursts_raise_the_rate(self):
        """A strong flash crowd packs the same sessions into less time."""
        calm = FleetConfig(
            sessions=400, seed=SEED, burst_duration=0.0, arrival_rate=20.0
        )
        stormy = FleetConfig(
            sessions=400,
            seed=SEED,
            burst_every=4.0,
            burst_duration=2.0,
            burst_factor=10.0,
            arrival_rate=20.0,
        )
        assert arrival_times(stormy)[-1] < arrival_times(calm)[-1]


class TestGenerateSchedule:
    def test_digest_stable_across_generations(self):
        config = FleetConfig(sessions=40, seed=SEED, seed_secrets=3)
        first = generate_schedule(config)
        second = generate_schedule(config)
        assert first.digest == second.digest
        assert first.ops == second.ops
        assert first.secrets == second.secrets

    def test_different_seed_different_schedule(self):
        base = FleetConfig(sessions=40, seed=SEED, seed_secrets=3)
        other = FleetConfig(sessions=40, seed=SEED + "-alt", seed_secrets=3)
        assert generate_schedule(base).digest != generate_schedule(other).digest

    def test_ops_indexed_in_virtual_time_order(self):
        schedule = generate_schedule(
            FleetConfig(sessions=40, seed=SEED, seed_secrets=3)
        )
        for i, op in enumerate(schedule.ops):
            assert op.index == i
            assert op.kind in schedule.kind_counts()
            assert op.exclusive == (op.kind in EXCLUSIVE_KINDS)
        ats = [op.at for op in schedule.ops]
        assert ats == sorted(ats)
        assert schedule.horizon == ats[-1]

    def test_secrets_referenced_only_after_creation(self):
        """No op may use a secret before its creation op is scheduled."""
        schedule = generate_schedule(
            FleetConfig(sessions=60, seed=SEED, seed_secrets=4)
        )
        created_at = {}
        for op in schedule.ops:
            if op.kind == "create_secret":
                created_at[op.text] = op.at
        assert created_at, "schedule created no secrets"
        for op in schedule.ops:
            if op.kind == "create_secret":
                continue
            for secret, at in created_at.items():
                if op.text and (op.text in secret or secret in op.text):
                    assert op.at > at, (
                        f"op {op.index} uses a secret scheduled later"
                    )

    def test_declassify_follows_a_blocked_paste(self):
        schedule = generate_schedule(
            FleetConfig(sessions=120, seed=SEED, seed_secrets=6)
        )
        declassifies = [op for op in schedule.ops if op.kind == "declassify"]
        assert declassifies, "seed produced no declassification"
        by_par = {
            (op.session, op.par_id): op
            for op in schedule.ops
            if op.kind == "docs_paste"
        }
        for op in declassifies:
            paste = by_par[(op.session, op.par_id)]
            assert paste.text == op.text
            assert paste.at < op.at


class TestChurn:
    def test_churn_zero_is_byte_identical(self):
        """churn=0 must spend the exact rng sequence of the pre-knob
        generator, so committed schedule digests stay valid."""
        base = FleetConfig(sessions=60, seed=SEED, seed_secrets=4)
        knob = FleetConfig(
            sessions=60, seed=SEED, seed_secrets=4, churn=0.0
        )
        assert generate_schedule(base).digest == generate_schedule(knob).digest

    def test_churn_shifts_mix_toward_docs_typing(self):
        base = FleetConfig(sessions=150, seed=SEED, seed_secrets=4)
        hot = FleetConfig(
            sessions=150, seed=SEED, seed_secrets=4, churn=0.8
        )
        calm = generate_schedule(base).kind_counts()
        churned = generate_schedule(hot).kind_counts()
        # Keystroke ops dominate the shift; wiki/forum shrink.
        assert churned["docs_type"] > 2 * max(1, calm["docs_type"])
        assert churned["wiki_post"] + churned["forum_post"] < (
            calm["wiki_post"] + calm["forum_post"]
        )
        # The typed public text respects the keystroke cap.
        for op in generate_schedule(hot).ops:
            if op.kind == "docs_type":
                assert len(op.text) <= hot.max_type_chars

    def test_churn_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(sessions=10, seed=SEED, churn=1.5)
        with pytest.raises(ValueError):
            FleetConfig(sessions=10, seed=SEED, churn=-0.1)
