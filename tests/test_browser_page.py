"""Tests for Window/Page/Tab/Browser."""

import pytest

from repro.browser import Browser
from repro.errors import BrowserError, NetworkError
from repro.services import Network, WikiService


@pytest.fixture
def setup():
    network = Network()
    wiki = WikiService()
    network.register(wiki)
    browser = Browser(network)
    return browser, wiki


class TestNavigation:
    def test_open_loads_page(self, setup):
        browser, wiki = setup
        wiki.save_page("Home", "Welcome to the internal wiki landing page.")
        tab = browser.open(wiki.page_url("Home"))
        assert tab.page is not None
        assert "Welcome to the internal wiki" in tab.document.text_content()

    def test_tab_ids_unique(self, setup):
        browser, _wiki = setup
        assert browser.new_tab().tab_id != browser.new_tab().tab_id

    def test_unloaded_tab_document_raises(self, setup):
        browser, _wiki = setup
        with pytest.raises(BrowserError):
            browser.new_tab().document

    def test_navigate_unknown_origin_raises(self, setup):
        browser, _wiki = setup
        with pytest.raises(NetworkError):
            browser.open("https://nowhere.example.com/x")

    def test_window_origin(self, setup):
        browser, wiki = setup
        tab = browser.open(wiki.page_url("Home"))
        assert tab.window.origin == wiki.origin

    def test_page_service_binding(self, setup):
        browser, wiki = setup
        tab = browser.open(wiki.page_url("Home"))
        assert tab.page.service is wiki


class TestPageHooks:
    def test_hook_runs_on_every_load(self, setup):
        browser, wiki = setup
        loads = []
        browser.add_page_hook(lambda tab: loads.append(tab.page.url))
        browser.open(wiki.page_url("A"))
        browser.open(wiki.page_url("B"))
        assert len(loads) == 2

    def test_hook_sees_loaded_document(self, setup):
        browser, wiki = setup
        wiki.save_page("Data", "Content present when the hook fires.")
        seen = []
        browser.add_page_hook(
            lambda tab: seen.append(tab.document.text_content())
        )
        browser.open(wiki.page_url("Data"))
        assert "Content present" in seen[0]

    def test_navigation_replaces_page(self, setup):
        browser, wiki = setup
        tab = browser.open(wiki.page_url("One"))
        first = tab.page
        tab.navigate(wiki.page_url("Two"))
        assert tab.page is not first
