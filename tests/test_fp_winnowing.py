"""Tests for winnowing window selection (steps S3/S4)."""

import pytest

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.ngram import ngram_hashes
from repro.fingerprint.normalize import normalize
from repro.fingerprint.winnowing import select_winnowed, winnow


def brute_force_winnow(values, window_size):
    """Reference implementation: rightmost minimum of each window."""
    if not values:
        return []
    if len(values) <= window_size:
        best = 0
        for i in range(1, len(values)):
            if values[i] <= values[best]:
                best = i
        return [best]
    selected = []
    for start in range(len(values) - window_size + 1):
        window = values[start:start + window_size]
        best = 0
        for i in range(1, len(window)):
            if window[i] <= window[best]:
                best = i
        pos = start + best
        if not selected or selected[-1] != pos:
            selected.append(pos)
    return selected


class TestWinnow:
    def test_empty(self):
        assert winnow([], 3) == []

    def test_single_value(self):
        assert winnow([42], 3) == [0]

    def test_shorter_than_window_selects_rightmost_min(self):
        assert winnow([5, 1, 3], 10) == [1]

    def test_partial_window_rightmost_minimum_pinned(self):
        """Regression for the unified partial-window path.

        The special-case scan for ``n <= window_size`` was folded into
        the deque loop; this pins its contract — the *rightmost*
        minimum of the partial window — across sizes and tie layouts,
        so any future tie-break drift in either phrasing fails here.
        """
        import random

        rng = random.Random(314)
        for _ in range(200):
            n = rng.randint(1, 12)
            w = rng.randint(n, 16)  # every case is a partial window
            values = [rng.randrange(4) for _ in range(n)]
            minimum = min(values)
            expected = max(i for i, v in enumerate(values) if v == minimum)
            assert winnow(values, w) == [expected], (values, w)

    def test_partial_window_all_ties(self):
        assert winnow([7, 7, 7, 7], 9) == [3]

    def test_paper_example(self):
        # §4.1: hashes {52, 40, 53, 13, 22}, window 3 -> fingerprint {40, 13}
        values = [52, 40, 53, 13, 22]
        positions = winnow(values, 3)
        assert [values[p] for p in positions] == [40, 13]

    def test_matches_brute_force(self):
        import random
        rng = random.Random(7)
        for _ in range(50):
            values = [rng.randrange(100) for _ in range(rng.randint(0, 60))]
            for w in (1, 2, 3, 5, 10):
                assert winnow(values, w) == brute_force_winnow(values, w), (
                    values,
                    w,
                )

    def test_window_one_selects_everything(self):
        values = [9, 3, 7, 7, 1]
        assert winnow(values, 1) == [0, 1, 2, 3, 4]

    def test_ties_select_rightmost(self):
        # Two equal minima within one window: rightmost wins.
        assert winnow([5, 2, 2, 9], 3) == [2]

    def test_every_window_covered(self):
        # Density guarantee: each window of w hashes contains a selection.
        import random
        rng = random.Random(11)
        values = [rng.randrange(1000) for _ in range(200)]
        w = 8
        selected = set(winnow(values, w))
        for start in range(len(values) - w + 1):
            assert any(start <= p < start + w for p in selected)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            winnow([1, 2], 0)

    def test_monotone_positions(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        positions = winnow(values, 4)
        assert positions == sorted(positions)


class TestSelectWinnowed:
    def test_preserves_metadata(self):
        config = FingerprintConfig(ngram_size=3, window_size=2)
        hashes = ngram_hashes(normalize("Hello winnowing world"), config)
        selected = select_winnowed(hashes, config)
        assert selected
        assert set(selected) <= set(hashes)
        # Selected hashes keep their original positions.
        for h in selected:
            assert h.orig_end > h.orig_start
