"""Tests for security tags."""

import pytest

from repro.errors import TagError
from repro.tdm.tags import Tag, as_tag


class TestTag:
    def test_valid_names(self):
        for name in ("ti", "interview-data", "product_announcement.x", "a1"):
            assert Tag(name).name == name

    def test_invalid_names_rejected(self):
        for name in ("", "UPPER", "has space", "-leading", "é"):
            with pytest.raises(TagError):
                Tag(name)

    def test_non_string_rejected(self):
        with pytest.raises(TagError):
            Tag(42)  # type: ignore[arg-type]

    def test_equality_by_name_only(self):
        assert Tag("ti", owner="alice") == Tag("ti", owner="bob")
        assert Tag("ti") != Tag("tw")

    def test_hashable_by_name(self):
        assert len({Tag("ti", owner="a"), Tag("ti", owner="b")}) == 1

    def test_str(self):
        assert str(Tag("interview-data")) == "interview-data"

    def test_ordering(self):
        assert Tag("a") < Tag("b")
        assert sorted([Tag("c"), Tag("a")]) == [Tag("a"), Tag("c")]

    def test_owner_recorded(self):
        assert Tag("tn", owner="alice").owner == "alice"
        assert Tag("ti").owner is None


class TestAsTag:
    def test_passthrough(self):
        tag = Tag("ti")
        assert as_tag(tag) is tag

    def test_from_string(self):
        assert as_tag("tw") == Tag("tw")

    def test_rejects_other_types(self):
        with pytest.raises(TagError):
            as_tag(3.14)
