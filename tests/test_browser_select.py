"""Tests for the CSS-selector-lite query engine."""

import pytest

from repro.browser.dom import Document
from repro.browser.select import select, select_one
from repro.errors import DOMError


@pytest.fixture
def document():
    document = Document()
    editor = document.create_element("div", {"id": "editor", "class": "app"})
    document.body.append_child(editor)
    for i in range(3):
        par = document.create_element(
            "div", {"class": "kix-paragraph body", "data-par-id": f"p{i}"}
        )
        par.set_text(f"text {i}")
        editor.append_child(par)
    sidebar = document.create_element("div", {"class": "sidebar"})
    link = document.create_element("a", {"href": "#", "class": "body"})
    sidebar.append_child(link)
    document.body.append_child(sidebar)
    return document


class TestSimpleSelectors:
    def test_by_tag(self, document):
        # editor + 3 paragraphs + sidebar
        assert len(select(document, "div")) == 5

    def test_by_id(self, document):
        assert select_one(document, "#editor").id == "editor"

    def test_by_class(self, document):
        assert len(select(document, ".kix-paragraph")) == 3

    def test_compound(self, document):
        assert len(select(document, "div.body")) == 3  # paragraphs, not the <a>
        assert select(document, "a.body")

    def test_attribute_presence(self, document):
        assert len(select(document, "[data-par-id]")) == 3

    def test_attribute_value(self, document):
        match = select_one(document, "[data-par-id=p1]")
        assert match.get_attribute("data-par-id") == "p1"

    def test_tag_case_insensitive(self, document):
        assert select(document, "DIV.kix-paragraph")


class TestCombinators:
    def test_descendant(self, document):
        assert len(select(document, "#editor .kix-paragraph")) == 3
        assert select(document, ".sidebar a")

    def test_descendant_requires_ancestry(self, document):
        assert select(document, ".sidebar .kix-paragraph") == []

    def test_deep_descendant(self, document):
        assert select(document, "body #editor [data-par-id=p2]")

    def test_selector_list_union(self, document):
        results = select(document, ".sidebar a, .kix-paragraph")
        assert len(results) == 4

    def test_union_deduplicates(self, document):
        results = select(document, ".kix-paragraph, [data-par-id]")
        assert len(results) == 3


class TestEdgeCases:
    def test_no_match(self, document):
        assert select(document, ".missing") == []
        assert select_one(document, ".missing") is None

    def test_scoped_to_subtree(self, document):
        sidebar = select_one(document, ".sidebar")
        assert select(sidebar, "a")
        assert select(sidebar, ".kix-paragraph") == []

    def test_root_not_included(self, document):
        editor = select_one(document, "#editor")
        assert editor not in select(editor, "div")

    def test_invalid_selector_rejected(self, document):
        with pytest.raises(DOMError):
            select(document, "")
        with pytest.raises(DOMError):
            select(document, "???")

    def test_document_order(self, document):
        ids = [el.get_attribute("data-par-id") for el in select(document, "[data-par-id]")]
        assert ids == ["p0", "p1", "p2"]
