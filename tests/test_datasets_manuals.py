"""Tests for the manuals corpus and its ground truth."""

import pytest

from repro.datasets.manuals import FATES, ManualsCorpus
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def corpus():
    return ManualsCorpus.generate(seed=11)


class TestGeneration:
    def test_four_chapters(self, corpus):
        assert len(corpus) == 4
        ids = {c.chapter_id for c in corpus}
        assert ids == {
            "iphone-camera",
            "iphone-message",
            "mysql-new-features",
            "mysql-whats-mysql",
        }

    def test_four_versions_each(self, corpus):
        for chapter in corpus:
            assert len(chapter.versions) == 4

    def test_paper_paragraph_counts(self, corpus):
        assert len(corpus.by_id("iphone-camera").base_paragraphs) == 40
        assert len(corpus.by_id("iphone-message").base_paragraphs) == 20
        assert len(corpus.by_id("mysql-new-features").base_paragraphs) == 28
        assert len(corpus.by_id("mysql-whats-mysql").base_paragraphs) == 8

    def test_scale_parameter(self):
        small = ManualsCorpus.generate(scale=0.5)
        assert len(small.by_id("iphone-camera").base_paragraphs) == 20

    def test_deterministic(self):
        a = ManualsCorpus.generate(seed=3)
        b = ManualsCorpus.generate(seed=3)
        assert (
            a.by_id("iphone-camera").versions[2].text()
            == b.by_id("iphone-camera").versions[2].text()
        )

    def test_unknown_chapter(self, corpus):
        with pytest.raises(DatasetError):
            corpus.by_id("missing")

    def test_base_version_all_kept(self, corpus):
        chapter = corpus.by_id("mysql-whats-mysql")
        assert set(chapter.versions[0].fates) == {"kept"}


class TestGroundTruth:
    def test_fates_valid(self, corpus):
        for chapter in corpus:
            for version in chapter.versions:
                assert set(version.fates) <= set(FATES)

    def test_kept_paragraphs_identical(self, corpus):
        chapter = corpus.by_id("mysql-whats-mysql")
        version = chapter.version("4.1")
        for i, fate in enumerate(version.fates):
            if fate == "kept":
                assert chapter.base_paragraphs[i] in version.paragraphs

    def test_dropped_paragraphs_absent(self, corpus):
        chapter = corpus.by_id("iphone-camera")
        version = chapter.version("iOS7")
        for i, fate in enumerate(version.fates):
            if fate == "dropped":
                assert chapter.base_paragraphs[i] not in version.paragraphs

    def test_ground_truth_counts_surviving_concepts(self, corpus):
        chapter = corpus.by_id("iphone-camera")
        version = chapter.version("iOS4")
        disclosed = version.ground_truth_disclosed()
        expected = sum(
            1 for fate in version.fates if fate in ("kept", "light", "rephrased")
        )
        assert len(disclosed) == expected

    def test_decay_shapes(self, corpus):
        """iPhone chapters decay to near zero; What's MySQL stays full."""
        camera = corpus.by_id("iphone-camera")
        early = len(camera.version("iOS4").ground_truth_disclosed())
        late = len(camera.version("iOS7").ground_truth_disclosed())
        assert late < early
        assert late <= len(camera.base_paragraphs) * 0.25

        whats = corpus.by_id("mysql-whats-mysql")
        final = len(whats.version("5.1").ground_truth_disclosed())
        assert final == len(whats.base_paragraphs)

    def test_paragraph_count_consistency(self, corpus):
        """Survivors plus replacements keep the chapter size stable."""
        for chapter in corpus:
            for version in chapter.versions:
                assert len(version.paragraphs) == len(chapter.base_paragraphs)

    def test_version_lookup(self, corpus):
        chapter = corpus.by_id("mysql-new-features")
        assert chapter.version("5.0").version == "5.0"
        with pytest.raises(DatasetError):
            chapter.version("9.9")

    def test_version_names(self, corpus):
        assert corpus.by_id("iphone-camera").version_names() == [
            "iOS3", "iOS4", "iOS5", "iOS7",
        ]
