"""Tests for the one-shot evaluation runner."""

import pytest

from repro.eval.runner import EvaluationRunner, EvaluationScale
from repro.fingerprint.config import TINY_CONFIG


@pytest.fixture(scope="module")
def report():
    scale = EvaluationScale(
        wikipedia_revisions=10,
        ebooks=3,
        paragraphs_per_book=15,
        fig13_books=4,
        fig13_paragraphs_per_book=15,
        seed=7,
    )
    runner = EvaluationRunner(scale, config=TINY_CONFIG)
    return runner.run()


class TestRunner:
    def test_all_sections_present(self, report):
        for marker in ("Table 1", "Figure 8", "Figure 9", "Figure 10",
                       "Figure 11", "Figure 12", "Figure 13"):
            assert marker in report

    def test_report_has_data(self, report):
        assert "iphone-camera" in report
        assert "creation-with-overlap" in report
        assert "Chicago" in report

    def test_sections_separated(self, report):
        assert report.count("=" * 70) == 6

    def test_deterministic(self):
        scale = EvaluationScale(
            wikipedia_revisions=6, ebooks=2, paragraphs_per_book=10,
            fig13_books=2, fig13_paragraphs_per_book=10, seed=3,
        )
        a = EvaluationRunner(scale, config=TINY_CONFIG)
        b = EvaluationRunner(scale, config=TINY_CONFIG)
        report_a = a.run()
        report_b = b.run()
        # Timing sections vary; the effectiveness sections must match.
        assert report_a.split("Figure 12")[0] == report_b.split("Figure 12")[0]


def test_cli_experiment_all(monkeypatch, capsys):
    import repro.eval.runner as runner_mod
    from repro.cli import main

    small = EvaluationScale(
        wikipedia_revisions=8, ebooks=2, paragraphs_per_book=10,
        fig13_books=2, fig13_paragraphs_per_book=10, seed=5,
    )
    monkeypatch.setattr(runner_mod, "EvaluationScale", lambda seed: small)
    assert main(["experiment", "all"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Figure 13" in out
