"""Tests for the positioned n-gram hash stream."""

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.ngram import ngram_hashes
from repro.fingerprint.normalize import normalize
from repro.fingerprint.rolling_hash import KarpRabin


class TestNgramHashes:
    def test_count(self):
        config = FingerprintConfig(ngram_size=4, window_size=2)
        normalized = normalize("abcdefgh")
        assert len(ngram_hashes(normalized, config)) == 5

    def test_short_input_empty(self):
        config = FingerprintConfig(ngram_size=10, window_size=2)
        assert ngram_hashes(normalize("short"), config) == []

    def test_values_match_karp_rabin(self):
        config = FingerprintConfig(ngram_size=5, window_size=2)
        normalized = normalize("The Quick Brown Fox!")
        kr = KarpRabin(5, config.hash_bits)
        stream = ngram_hashes(normalized, config)
        for h in stream:
            ngram = normalized.text[h.norm_pos:h.norm_pos + 5]
            assert h.value == kr.hash_one(ngram)

    def test_original_positions_cover_ngram(self):
        config = FingerprintConfig(ngram_size=5, window_size=2)
        source = "The Quick Brown Fox!"
        normalized = normalize(source)
        for h in ngram_hashes(normalized, config):
            original_slice = source[h.orig_start:h.orig_end]
            squashed = "".join(c.lower() for c in original_slice if c.isalnum())
            assert squashed == normalized.text[h.norm_pos:h.norm_pos + 5]

    def test_positions_increase(self):
        config = FingerprintConfig(ngram_size=3, window_size=2)
        stream = ngram_hashes(normalize("abcdefghij"), config)
        positions = [h.norm_pos for h in stream]
        assert positions == sorted(positions)
