"""Tests for repro.util.clock."""

from repro.util.clock import LogicalClock, SystemClock


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now() == 0.0

    def test_custom_start(self):
        assert LogicalClock(start=10).now() == 10.0

    def test_strictly_increasing(self):
        clock = LogicalClock()
        samples = [clock.now() for _ in range(100)]
        assert all(b > a for a, b in zip(samples, samples[1:]))

    def test_independent_instances(self):
        a, b = LogicalClock(), LogicalClock()
        a.now()
        a.now()
        assert b.now() == 0.0


class TestSystemClock:
    def test_returns_float(self):
        assert isinstance(SystemClock().now(), float)

    def test_non_decreasing(self):
        clock = SystemClock()
        samples = [clock.now() for _ in range(50)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))
