"""Tests for the paragraph-highlighting UI model."""

import pytest

from repro.browser.dom import Document
from repro.plugin.ui import Highlighter, STATUS_ATTR, STATUS_CLEAR, STATUS_VIOLATION


@pytest.fixture
def env():
    document = Document()
    element = document.create_element("div")
    document.body.append_child(element)
    return Highlighter(), document, element


class TestHighlighter:
    def test_mark_violation(self, env):
        ui, _doc, el = env
        ui.mark_violation(el, reason="discloses tw")
        assert el.get_attribute(STATUS_ATTR) == STATUS_VIOLATION
        assert "background-color" in el.get_attribute("style")
        assert el.get_attribute("title") == "discloses tw"

    def test_is_marked(self, env):
        ui, _doc, el = env
        assert not ui.is_marked(el)
        ui.mark_violation(el)
        assert ui.is_marked(el)

    def test_mark_clear_resets(self, env):
        ui, _doc, el = env
        ui.mark_violation(el)
        ui.mark_clear(el)
        assert el.get_attribute(STATUS_ATTR) == STATUS_CLEAR
        assert el.get_attribute("style") == ""

    def test_clear_without_mark_is_noop(self, env):
        ui, _doc, el = env
        ui.mark_clear(el)
        assert el.get_attribute(STATUS_ATTR) is None

    def test_marked_elements_query(self, env):
        ui, doc, el = env
        other = doc.create_element("div")
        doc.body.append_child(other)
        ui.mark_violation(el)
        assert ui.marked_elements(doc) == [el]

    def test_status_of(self, env):
        ui, _doc, el = env
        assert ui.status_of(el) is None
        ui.mark_violation(el)
        assert ui.status_of(el) == STATUS_VIOLATION
