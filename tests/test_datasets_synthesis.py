"""Tests for text synthesis and the edit model."""

import random

import pytest

from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.datasets.vocabulary import TOPIC_WORDS, VOCABULARY, vocabulary_for
from repro.errors import DatasetError
from repro.util.text import split_sentences


@pytest.fixture
def synth():
    return TextSynthesizer("mysql", random.Random("seed"))


@pytest.fixture
def editor(synth):
    return EditModel(synth, random.Random("edit-seed"))


class TestVocabulary:
    def test_base_vocabulary_size(self):
        assert len(VOCABULARY) > 300

    def test_all_lowercase_words(self):
        assert all(w == w.lower() and w.isalpha() for w in VOCABULARY)

    def test_topic_enrichment(self):
        words = vocabulary_for("mysql")
        for jargon in TOPIC_WORDS["mysql"]:
            assert jargon in words

    def test_unknown_topic_base_only(self):
        assert vocabulary_for("unknown-topic") == list(VOCABULARY)


class TestTextSynthesizer:
    def test_deterministic_from_seed(self):
        a = TextSynthesizer("mysql", random.Random("x")).paragraph()
        b = TextSynthesizer("mysql", random.Random("x")).paragraph()
        assert a == b

    def test_different_seeds_differ(self):
        a = TextSynthesizer("mysql", random.Random("x")).paragraph()
        b = TextSynthesizer("mysql", random.Random("y")).paragraph()
        assert a != b

    def test_sentence_shape(self, synth):
        sentence = synth.sentence()
        assert sentence.endswith(".")
        assert sentence[0].isupper()
        assert 8 <= len(sentence.split()) <= 18

    def test_sentence_bounds_respected(self, synth):
        sentence = synth.sentence(min_words=3, max_words=3)
        assert len(sentence.split()) == 3

    def test_invalid_bounds(self, synth):
        with pytest.raises(DatasetError):
            synth.sentence(min_words=5, max_words=2)

    def test_paragraph_sentence_count(self, synth):
        paragraph = synth.paragraph(min_sentences=4, max_sentences=4)
        assert len(split_sentences(paragraph)) == 4

    def test_document_paragraph_count(self, synth):
        doc = synth.document(min_paragraphs=3, max_paragraphs=3)
        assert len(doc) == 3


class TestEditModel:
    def test_substitute_zero_is_identity(self, editor, synth):
        text = synth.paragraph()
        assert editor.substitute_words(text, 0.0) == text

    def test_substitute_fraction_changes_words(self, editor, synth):
        text = synth.paragraph()
        edited = editor.substitute_words(text, 0.5)
        original = text.split()
        changed = edited.split()
        assert len(original) == len(changed)
        differing = sum(1 for a, b in zip(original, changed) if a != b)
        assert differing >= len(original) * 0.3

    def test_substitute_preserves_sentence_punctuation(self, editor):
        text = "Alpha beta gamma. Delta epsilon zeta."
        edited = editor.substitute_words(text, 1.0)
        assert edited.count(".") == 2

    def test_substitute_preserves_capitalisation(self, editor):
        text = "Alpha beta. Gamma delta."
        edited = editor.substitute_words(text, 1.0)
        for word in (edited.split()[0], ):
            assert word[0].isupper()

    def test_invalid_fraction(self, editor):
        with pytest.raises(DatasetError):
            editor.substitute_words("text", 1.5)

    def test_drop_sentence(self, editor, synth):
        text = synth.paragraph(min_sentences=4, max_sentences=4)
        shorter = editor.drop_sentence(text)
        assert len(split_sentences(shorter)) == 3

    def test_drop_keeps_single_sentence(self, editor):
        assert editor.drop_sentence("Only one sentence.") == "Only one sentence."

    def test_insert_sentence(self, editor, synth):
        text = synth.paragraph(min_sentences=3, max_sentences=3)
        longer = editor.insert_sentence(text)
        assert len(split_sentences(longer)) == 4

    def test_shuffle_preserves_sentences(self, editor, synth):
        text = synth.paragraph(min_sentences=5, max_sentences=5)
        shuffled = editor.shuffle_sentences(text)
        assert sorted(split_sentences(shuffled)) == sorted(split_sentences(text))

    def test_edit_intensity_zero_identity(self, editor, synth):
        text = synth.paragraph()
        assert editor.edit_paragraph(text, 0.0) == text

    def test_evolve_document_respects_probabilities(self, editor, synth):
        paragraphs = [synth.paragraph() for _ in range(10)]
        evolved = editor.evolve_document(
            paragraphs, edit_prob=0.0, edit_intensity=0.0,
            append_prob=0.0, delete_prob=0.0,
        )
        assert evolved == paragraphs

    def test_evolve_never_returns_empty(self, editor, synth):
        evolved = editor.evolve_document(
            [synth.paragraph()],
            edit_prob=0.0, edit_intensity=0.0, delete_prob=1.0,
        )
        assert evolved  # a fresh paragraph is appended when all deleted
