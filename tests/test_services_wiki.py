"""Tests for the form-based wiki service."""

import pytest

from repro.browser import Browser
from repro.browser.http import HttpRequest
from repro.services import Network, WikiService


@pytest.fixture
def setup():
    network = Network()
    wiki = WikiService()
    network.register(wiki)
    return Browser(network), wiki


class TestRendering:
    def test_page_content_rendered_as_paragraphs(self, setup):
        browser, wiki = setup
        wiki.save_page("Guide", "First paragraph.\n\nSecond paragraph.")
        tab = browser.open(wiki.page_url("Guide"))
        paragraphs = tab.document.get_elements_by_tag("p")
        assert [p.text_content() for p in paragraphs] == [
            "First paragraph.",
            "Second paragraph.",
        ]

    def test_edit_form_present(self, setup):
        browser, wiki = setup
        tab = browser.open(wiki.page_url("Anything"))
        assert tab.document.get_element_by_id("edit-form") is not None
        assert tab.document.get_element_by_id("edit-body") is not None

    def test_hidden_page_field(self, setup):
        browser, wiki = setup
        tab = browser.open(wiki.page_url("Target"))
        form = tab.document.get_element_by_id("edit-form")
        hidden = [
            el for el in form.iter_elements()
            if el.tag == "input" and el.get_attribute("type") == "hidden"
        ]
        assert hidden[0].get_attribute("value") == "Target"

    def test_empty_page_renders(self, setup):
        browser, wiki = setup
        tab = browser.open(wiki.page_url("Missing"))
        assert tab.document.get_elements_by_tag("p") == []


class TestEditing:
    def test_edit_saves_to_backend(self, setup):
        browser, wiki = setup
        assert wiki.edit(browser.new_tab(), "Guide", "New content for the page.")
        assert wiki.page_text("Guide") == "New content for the page."

    def test_edit_splits_paragraphs(self, setup):
        browser, wiki = setup
        wiki.edit(browser.new_tab(), "Guide", "Para one.\n\nPara two.")
        doc = wiki.backend.get("wiki:Guide")
        assert len(doc.paragraphs) == 2

    def test_edit_replaces_content(self, setup):
        browser, wiki = setup
        tab = browser.new_tab()
        wiki.edit(tab, "Guide", "Original.")
        wiki.edit(tab, "Guide", "Replacement.")
        assert wiki.page_text("Guide") == "Replacement."


class TestBackendProtocol:
    def test_save_without_page_rejected(self, setup):
        _browser, wiki = setup
        response = wiki.handle_request(
            HttpRequest("POST", wiki.url("/wiki/save"), form_data={"body": "x"})
        )
        assert response.status == 400

    def test_unknown_path_404(self, setup):
        _browser, wiki = setup
        response = wiki.handle_request(HttpRequest("POST", wiki.url("/other")))
        assert response.status == 404
