"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

from conftest import OTHER_TEXT, SECRET_TEXT


@pytest.fixture
def files(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text(SECRET_TEXT)
    b.write_text(OTHER_TEXT)
    return a, b, tmp_path


class TestFingerprint:
    def test_basic(self, files, capsys):
        a, _b, _tmp = files
        assert main(["fingerprint", str(a)]) == 0
        out = capsys.readouterr().out
        assert "hashes:" in out
        assert "guarantee:" in out

    def test_show_hashes(self, files, capsys):
        a, _b, _tmp = files
        main(["fingerprint", str(a), "--show-hashes", "3", "--ngram", "6",
              "--window", "3"])
        out = capsys.readouterr().out
        assert any(token.isdigit() for token in out.split())

    def test_custom_config_changes_guarantee(self, files, capsys):
        a, _b, _tmp = files
        main(["fingerprint", str(a), "--ngram", "10", "--window", "11"])
        assert ">= 20 chars" in capsys.readouterr().out


class TestCompare:
    def test_identical_files_disclose(self, files, capsys):
        a, _b, tmp = files
        copy = tmp / "copy.txt"
        copy.write_text(SECRET_TEXT)
        assert main(["compare", str(a), str(copy)]) == 1
        assert "significant disclosure" in capsys.readouterr().out

    def test_unrelated_files_clean(self, files, capsys):
        a, b, _tmp = files
        assert main(["compare", str(a), str(b)]) == 0
        assert "no significant disclosure" in capsys.readouterr().out

    def test_threshold_option(self, files):
        # Half-overlapping files: both directions sit mid-range, so the
        # verdict flips with the threshold.
        a, _b, tmp = files
        mixed = tmp / "mixed.txt"
        mixed.write_text(SECRET_TEXT[: len(SECRET_TEXT) // 2] + " " + OTHER_TEXT)
        strict = main(["compare", str(mixed), str(a), "--threshold", "0.99",
                       "--ngram", "6", "--window", "3"])
        loose = main(["compare", str(mixed), str(a), "--threshold", "0.2",
                      "--ngram", "6", "--window", "3"])
        assert strict == 0
        assert loose == 1


class TestObserveScan:
    def test_observe_then_scan(self, files, capsys):
        a, b, tmp = files
        db = tmp / "db.json"
        assert main(["observe", str(a), "--db", str(db), "--id", "doc-a"]) == 0
        assert db.exists()
        # A copy of the observed file discloses it.
        assert main(["scan", str(a), "--db", str(db)]) == 1
        assert "doc-a" in capsys.readouterr().out
        # An unrelated file does not.
        assert main(["scan", str(b), "--db", str(db)]) == 0

    def test_observe_accumulates(self, files, capsys):
        a, b, tmp = files
        db = tmp / "db.json"
        main(["observe", str(a), "--db", str(db), "--id", "doc-a"])
        main(["observe", str(b), "--db", str(db), "--id", "doc-b"])
        out = capsys.readouterr().out
        assert "2 segments" in out

    def test_encrypted_database(self, files, capsys):
        a, _b, tmp = files
        db = tmp / "db.enc"
        main(["observe", str(a), "--db", str(db), "--id", "doc-a",
              "--key", "disk-secret"])
        raw = db.read_text()
        assert "doc-a" not in raw
        assert main(["scan", str(a), "--db", str(db), "--key", "disk-secret"]) == 1

    def test_scan_missing_db_fails(self, files, capsys):
        a, _b, tmp = files
        assert main(["scan", str(a), "--db", str(tmp / "nope.json")]) == 2


class TestCorpusAndExperiments:
    def test_corpus_table(self, capsys):
        assert main(["corpus", "--revisions", "3", "--books", "2"]) == 0
        out = capsys.readouterr().out
        assert "Wikipedia" in out
        assert "MySQL" in out

    def test_experiment_fig10(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "iphone-camera" in out
        assert "browserflow" in out

    def test_experiment_fig11(self, capsys):
        assert main(["experiment", "fig11"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestExperimentSubcommands:
    def test_experiment_fig8(self, capsys):
        assert main(["experiment", "fig8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Chicago" in out


class TestStatsAndTrace:
    """The observability subcommands: `repro stats` and `repro trace`."""

    @pytest.fixture
    def observed_db(self, files):
        a, _b, tmp = files
        db = tmp / "db.json"
        assert main(["observe", str(a), "--db", str(db), "--id", "doc-a"]) == 0
        return db

    def test_stats_outputs_registry_snapshot(self, files, observed_db, capsys):
        assert main(["stats", "--db", str(observed_db)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["engine.paragraph.segments"] == 1
        assert snapshot["engine.paragraph.queries"] == 0
        assert "engine.paragraph.algorithm1_seconds" in snapshot

    def test_stats_scan_populates_query_instruments(self, files, observed_db, capsys):
        a, _b, _tmp = files
        assert main(["stats", "--db", str(observed_db), "--scan", str(a)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["engine.paragraph.queries"] == 1
        hist = snapshot["engine.paragraph.algorithm1_seconds"]
        assert hist["count"] == 1
        assert sum(hist["buckets"].values()) == 1

    def test_stats_missing_db_fails(self, files, capsys):
        _a, _b, tmp = files
        assert main(["stats", "--db", str(tmp / "nope.json")]) == 2
        assert "no database" in capsys.readouterr().err

    def test_trace_emits_nested_pipeline_spans(self, files, observed_db, capsys):
        a, _b, _tmp = files
        assert main(["trace", str(a), "--db", str(observed_db)]) == 0
        document = json.loads(capsys.readouterr().out)
        (root,) = document["spans"]
        assert root["name"] == "scan"
        names = set()

        def walk(entry):
            names.add(entry["name"])
            for child in entry["children"]:
                walk(child)

        walk(root)
        # The acceptance bar: a tree covering >= 4 distinct stages.
        assert {"scan", "intercept", "fingerprint", "algorithm1"} <= names
        assert len(names) >= 4
        decision = next(c for c in root["children"] if c["name"] == "decision")
        assert decision["attributes"]["disclosing"] is True

    def test_trace_output_file_validates_against_schema(
        self, files, observed_db, tmp_path
    ):
        import pathlib
        import sys

        tools = pathlib.Path(__file__).resolve().parent.parent / "tools"
        sys.path.insert(0, str(tools))
        try:
            from validate_trace import main as validate_main
        finally:
            sys.path.remove(str(tools))

        a, _b, _tmp = files
        out = tmp_path / "trace.json"
        assert main(
            ["trace", str(a), "--db", str(observed_db), "--output", str(out)]
        ) == 0
        assert (
            validate_main([str(out), "--min-stages", "4"]) == 0
        )


class TestDbLock:
    """The observe read-modify-write cycle holds an advisory lock, so a
    concurrent observe cannot load the same stale snapshot and clobber
    the other's save (the classic lost update)."""

    def test_concurrent_observes_do_not_lose_updates(self, files):
        import threading

        import repro.cli as cli

        a, b, tmp = files
        db = tmp / "db.json"
        first_loaded = threading.Event()
        release_first = threading.Event()
        loads = []

        def hook():
            loads.append(threading.current_thread().name)
            if len(loads) == 1:
                first_loaded.set()
                assert release_first.wait(timeout=10)

        results = {}

        def observe(name, path, segment_id):
            results[name] = main(
                ["observe", str(path), "--db", str(db), "--id", segment_id]
            )

        cli._AFTER_LOAD_HOOK = hook
        try:
            t1 = threading.Thread(
                target=observe, args=("t1", a, "segA"), name="t1"
            )
            t1.start()
            assert first_loaded.wait(timeout=10)
            # t1 sits mid read-modify-write; t2 must block on the lock
            # rather than load the same (empty) snapshot.
            t2 = threading.Thread(
                target=observe, args=("t2", b, "segB"), name="t2"
            )
            t2.start()
            t2.join(timeout=0.5)
            assert t2.is_alive(), "second observe ran unlocked"
            assert loads == ["t1"]
            release_first.set()
            t1.join(timeout=10)
            t2.join(timeout=10)
        finally:
            cli._AFTER_LOAD_HOOK = None
        assert results == {"t1": 0, "t2": 0}
        from repro.disclosure.persistence import load_engine

        assert sorted(load_engine(db).segment_db.ids()) == ["segA", "segB"]

    def test_lock_sidecar_survives_snapshot_replace(self, files):
        # The lock lives beside the db, not on it: save_engine replaces
        # the db file atomically, which would orphan a lock on the
        # inode being replaced.
        a, _b, tmp = files
        db = tmp / "db.json"
        assert main(["observe", str(a), "--db", str(db), "--id", "s1"]) == 0
        assert (tmp / "db.json.lock").exists()
        assert main(["observe", str(a), "--db", str(db), "--id", "s2"]) == 0


class TestCorruptDbErrors:
    """Damaged databases exit 2 with one readable line, no traceback."""

    def observed_db_path(self, files):
        a, _b, tmp = files
        db = tmp / "db.json"
        main(["observe", str(a), "--db", str(db), "--id", "seg1"])
        return a, db

    def test_scan_truncated_db(self, files, capsys):
        a, db = self.observed_db_path(files)
        db.write_text(db.read_text()[:40])
        assert main(["scan", str(a), "--db", str(db)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "truncated or corrupt" in err

    def test_scan_wrong_key(self, files, capsys):
        a, _b, tmp = files
        db = tmp / "db.enc"
        main(["observe", str(a), "--db", str(db), "--id", "seg1", "--key", "right"])
        assert main(["scan", str(a), "--db", str(db), "--key", "wrong"]) == 2
        assert "wrong key or corrupt ciphertext" in capsys.readouterr().err

    def test_scan_encrypted_without_key(self, files, capsys):
        a, _b, tmp = files
        db = tmp / "db.enc"
        main(["observe", str(a), "--db", str(db), "--id", "seg1", "--key", "right"])
        assert main(["scan", str(a), "--db", str(db)]) == 2
        assert "cipher is required" in capsys.readouterr().err

    def test_observe_onto_corrupt_db(self, files, capsys):
        a, db = self.observed_db_path(files)
        db.write_text("{not json")
        assert main(["observe", str(a), "--db", str(db), "--id", "x"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRecover:
    def durable_dir(self, tmp_path):
        from repro.disclosure.wal import DurableEngine
        from repro.errors import SimulatedCrash
        from repro.fingerprint.config import TINY_CONFIG
        from repro.util.faults import Fault, FaultInjector

        directory = tmp_path / "durable"
        engine = DurableEngine(
            directory,
            config=TINY_CONFIG,
            faults=FaultInjector(
                schedule=[Fault.none(), Fault.none(), Fault.slow(10)]
            ),
            fsync="always",
        )
        engine.observe("s1", SECRET_TEXT, threshold=0.4)
        engine.observe("s2", OTHER_TEXT, threshold=0.4)
        with pytest.raises(SimulatedCrash):
            engine.observe("s3", SECRET_TEXT, threshold=0.4)
        return directory

    def test_recover_reports_replay(self, files, tmp_path, capsys):
        directory = self.durable_dir(tmp_path)
        assert main(["recover", "--dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "2 segments" in out
        assert "replayed 2 record(s)" in out
        assert "torn byte(s)" in out
        assert "clock resumed" in out

    def test_recover_compact_then_fast_replay(self, files, tmp_path, capsys):
        directory = self.durable_dir(tmp_path)
        assert main(["recover", "--dir", str(directory), "--compact"]) == 0
        assert "compacted through lsn" in capsys.readouterr().out
        assert main(["recover", "--dir", str(directory)]) == 0
        assert "replayed 0 record(s)" in capsys.readouterr().out

    def test_recover_missing_dir_is_fresh(self, tmp_path, capsys):
        assert main(["recover", "--dir", str(tmp_path / "empty")]) == 0
        assert "0 segments" in capsys.readouterr().out

    def sharded_dir(self, tmp_path, compacted=True):
        from repro.disclosure.wal import DurableEngine
        from repro.fingerprint.config import TINY_CONFIG

        directory = tmp_path / "sharded"
        engine = DurableEngine(
            directory, config=TINY_CONFIG, n_shards=4, fsync="always"
        )
        engine.observe("s1", SECRET_TEXT, threshold=0.4)
        engine.observe("s2", OTHER_TEXT, threshold=0.4)
        if compacted:
            engine.compact()
        engine.close()
        return directory

    def test_recover_adopts_shard_count_from_snapshot(self, files, tmp_path, capsys):
        directory = self.sharded_dir(tmp_path)
        assert main(["recover", "--dir", str(directory)]) == 0
        assert "2 segments" in capsys.readouterr().out

    def test_recover_wrong_shards_readable_error(self, files, tmp_path, capsys):
        directory = self.sharded_dir(tmp_path)
        assert main(
            ["recover", "--dir", str(directory), "--shards", "2"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "shard" in err

    def test_recover_uncompacted_sharded_needs_flag(self, files, tmp_path, capsys):
        directory = self.sharded_dir(tmp_path, compacted=False)
        # No snapshot manifest to adopt: the default open must fail
        # loudly instead of dropping three shards' records...
        assert main(["recover", "--dir", str(directory)]) == 2
        assert "shard" in capsys.readouterr().err
        # ...and the explicit flag recovers everything.
        assert main(
            ["recover", "--dir", str(directory), "--shards", "4"]
        ) == 0
        assert "2 segments" in capsys.readouterr().out

    def test_recover_wrong_key_preserves_log(self, files, tmp_path, capsys):
        from repro.disclosure.wal import DurableEngine
        from repro.fingerprint.config import TINY_CONFIG
        from repro.plugin.crypto import UploadCipher

        directory = tmp_path / "enc"
        engine = DurableEngine(
            directory, config=TINY_CONFIG, cipher=UploadCipher("right"),
            fsync="always",
        )
        engine.observe("s1", SECRET_TEXT, threshold=0.4)
        engine.close()
        before = (directory / "wal.log").read_bytes()
        assert main(
            ["recover", "--dir", str(directory), "--key", "wrong"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "wrong cipher key" in err
        # The wrong-key attempt did not truncate the log; the right key
        # still recovers every acknowledged record.
        assert (directory / "wal.log").read_bytes() == before
        assert main(
            ["recover", "--dir", str(directory), "--key", "right"]
        ) == 0
        assert "1 segments" in capsys.readouterr().out
