"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

from conftest import OTHER_TEXT, SECRET_TEXT


@pytest.fixture
def files(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text(SECRET_TEXT)
    b.write_text(OTHER_TEXT)
    return a, b, tmp_path


class TestFingerprint:
    def test_basic(self, files, capsys):
        a, _b, _tmp = files
        assert main(["fingerprint", str(a)]) == 0
        out = capsys.readouterr().out
        assert "hashes:" in out
        assert "guarantee:" in out

    def test_show_hashes(self, files, capsys):
        a, _b, _tmp = files
        main(["fingerprint", str(a), "--show-hashes", "3", "--ngram", "6",
              "--window", "3"])
        out = capsys.readouterr().out
        assert any(token.isdigit() for token in out.split())

    def test_custom_config_changes_guarantee(self, files, capsys):
        a, _b, _tmp = files
        main(["fingerprint", str(a), "--ngram", "10", "--window", "11"])
        assert ">= 20 chars" in capsys.readouterr().out


class TestCompare:
    def test_identical_files_disclose(self, files, capsys):
        a, _b, tmp = files
        copy = tmp / "copy.txt"
        copy.write_text(SECRET_TEXT)
        assert main(["compare", str(a), str(copy)]) == 1
        assert "significant disclosure" in capsys.readouterr().out

    def test_unrelated_files_clean(self, files, capsys):
        a, b, _tmp = files
        assert main(["compare", str(a), str(b)]) == 0
        assert "no significant disclosure" in capsys.readouterr().out

    def test_threshold_option(self, files):
        # Half-overlapping files: both directions sit mid-range, so the
        # verdict flips with the threshold.
        a, _b, tmp = files
        mixed = tmp / "mixed.txt"
        mixed.write_text(SECRET_TEXT[: len(SECRET_TEXT) // 2] + " " + OTHER_TEXT)
        strict = main(["compare", str(mixed), str(a), "--threshold", "0.99",
                       "--ngram", "6", "--window", "3"])
        loose = main(["compare", str(mixed), str(a), "--threshold", "0.2",
                      "--ngram", "6", "--window", "3"])
        assert strict == 0
        assert loose == 1


class TestObserveScan:
    def test_observe_then_scan(self, files, capsys):
        a, b, tmp = files
        db = tmp / "db.json"
        assert main(["observe", str(a), "--db", str(db), "--id", "doc-a"]) == 0
        assert db.exists()
        # A copy of the observed file discloses it.
        assert main(["scan", str(a), "--db", str(db)]) == 1
        assert "doc-a" in capsys.readouterr().out
        # An unrelated file does not.
        assert main(["scan", str(b), "--db", str(db)]) == 0

    def test_observe_accumulates(self, files, capsys):
        a, b, tmp = files
        db = tmp / "db.json"
        main(["observe", str(a), "--db", str(db), "--id", "doc-a"])
        main(["observe", str(b), "--db", str(db), "--id", "doc-b"])
        out = capsys.readouterr().out
        assert "2 segments" in out

    def test_encrypted_database(self, files, capsys):
        a, _b, tmp = files
        db = tmp / "db.enc"
        main(["observe", str(a), "--db", str(db), "--id", "doc-a",
              "--key", "disk-secret"])
        raw = db.read_text()
        assert "doc-a" not in raw
        assert main(["scan", str(a), "--db", str(db), "--key", "disk-secret"]) == 1

    def test_scan_missing_db_fails(self, files, capsys):
        a, _b, tmp = files
        assert main(["scan", str(a), "--db", str(tmp / "nope.json")]) == 2


class TestCorpusAndExperiments:
    def test_corpus_table(self, capsys):
        assert main(["corpus", "--revisions", "3", "--books", "2"]) == 0
        out = capsys.readouterr().out
        assert "Wikipedia" in out
        assert "MySQL" in out

    def test_experiment_fig10(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "iphone-camera" in out
        assert "browserflow" in out

    def test_experiment_fig11(self, capsys):
        assert main(["experiment", "fig11"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestExperimentSubcommands:
    def test_experiment_fig8(self, capsys):
        assert main(["experiment", "fig8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Chicago" in out


class TestStatsAndTrace:
    """The observability subcommands: `repro stats` and `repro trace`."""

    @pytest.fixture
    def observed_db(self, files):
        a, _b, tmp = files
        db = tmp / "db.json"
        assert main(["observe", str(a), "--db", str(db), "--id", "doc-a"]) == 0
        return db

    def test_stats_outputs_registry_snapshot(self, files, observed_db, capsys):
        assert main(["stats", "--db", str(observed_db)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["engine.paragraph.segments"] == 1
        assert snapshot["engine.paragraph.queries"] == 0
        assert "engine.paragraph.algorithm1_seconds" in snapshot

    def test_stats_scan_populates_query_instruments(self, files, observed_db, capsys):
        a, _b, _tmp = files
        assert main(["stats", "--db", str(observed_db), "--scan", str(a)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["engine.paragraph.queries"] == 1
        hist = snapshot["engine.paragraph.algorithm1_seconds"]
        assert hist["count"] == 1
        assert sum(hist["buckets"].values()) == 1

    def test_stats_missing_db_fails(self, files, capsys):
        _a, _b, tmp = files
        assert main(["stats", "--db", str(tmp / "nope.json")]) == 2
        assert "no database" in capsys.readouterr().err

    def test_trace_emits_nested_pipeline_spans(self, files, observed_db, capsys):
        a, _b, _tmp = files
        assert main(["trace", str(a), "--db", str(observed_db)]) == 0
        document = json.loads(capsys.readouterr().out)
        (root,) = document["spans"]
        assert root["name"] == "scan"
        names = set()

        def walk(entry):
            names.add(entry["name"])
            for child in entry["children"]:
                walk(child)

        walk(root)
        # The acceptance bar: a tree covering >= 4 distinct stages.
        assert {"scan", "intercept", "fingerprint", "algorithm1"} <= names
        assert len(names) >= 4
        decision = next(c for c in root["children"] if c["name"] == "decision")
        assert decision["attributes"]["disclosing"] is True

    def test_trace_output_file_validates_against_schema(
        self, files, observed_db, tmp_path
    ):
        import pathlib
        import sys

        tools = pathlib.Path(__file__).resolve().parent.parent / "tools"
        sys.path.insert(0, str(tools))
        try:
            from validate_trace import main as validate_main
        finally:
            sys.path.remove(str(tools))

        a, _b, _tmp = files
        out = tmp_path / "trace.json"
        assert main(
            ["trace", str(a), "--db", str(observed_db), "--output", str(out)]
        ) == 0
        assert (
            validate_main([str(out), "--min-stages", "4"]) == 0
        )
