"""Tests for dual-granularity tracking (DisclosureTracker)."""

import pytest

from repro.disclosure import DisclosureTracker
from repro.fingerprint.config import TINY_CONFIG

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT


@pytest.fixture
def tracker():
    return DisclosureTracker(TINY_CONFIG)


def pars(doc, *texts):
    return [(f"{doc}#p{i}", t) for i, t in enumerate(texts)]


class TestObserveDocument:
    def test_observes_both_granularities(self, tracker):
        tracker.observe_document("d1", pars("d1", SECRET_TEXT, OTHER_TEXT))
        assert len(tracker.paragraphs) == 2
        assert len(tracker.documents) == 1

    def test_paragraphs_carry_doc_id(self, tracker):
        tracker.observe_document("d1", pars("d1", SECRET_TEXT))
        assert tracker.paragraphs.segment_db.get("d1#p0").doc_id == "d1"

    def test_custom_thresholds(self, tracker):
        tracker.observe_document(
            "d1",
            pars("d1", SECRET_TEXT),
            paragraph_threshold=0.3,
            document_threshold=0.7,
        )
        assert tracker.paragraphs.segment_db.get("d1#p0").threshold == 0.3
        assert tracker.documents.segment_db.get("d1").threshold == 0.7


class TestCheckDocument:
    def test_paragraph_copy_detected(self, tracker):
        tracker.observe_document("src", pars("src", SECRET_TEXT, OTHER_TEXT))
        report = tracker.check_document("new", pars("new", SECRET_TEXT))
        assert report.disclosing
        par_sources = [s.segment_id for _pid, r in report.paragraph_reports for s in r.sources]
        assert "src#p0" in par_sources

    def test_own_document_excluded(self, tracker):
        tracker.observe_document("d1", pars("d1", SECRET_TEXT, OTHER_TEXT))
        report = tracker.check_document("d1", pars("d1", SECRET_TEXT, OTHER_TEXT))
        assert not report.disclosing

    def test_unrelated_clean(self, tracker):
        tracker.observe_document("src", pars("src", SECRET_TEXT))
        report = tracker.check_document("new", pars("new", THIRD_TEXT))
        assert not report.disclosing

    def test_document_requirement_catches_spread(self, tracker):
        """One sentence from each paragraph leaks across the document.

        Each individual fragment stays under the paragraph threshold,
        but together they cross the document threshold — the case the
        paper's dual granularity exists for (§4.1).
        """
        a = SECRET_TEXT + " " + THIRD_TEXT
        b = OTHER_TEXT + " " + "The schedule for maintenance windows rotates monthly between the two regions."
        tracker.observe_document(
            "src",
            pars("src", a, b),
            paragraph_threshold=0.9,
            document_threshold=0.4,
        )
        # Take about half of each source paragraph.
        leak = (
            SECRET_TEXT
            + " "
            + OTHER_TEXT
        )
        report = tracker.check_document("new", pars("new", leak))
        assert report.document_report is not None
        assert report.document_report.disclosing
        # Paragraph granularity alone would have missed it.
        par_hits = [s for _pid, r in report.paragraph_reports for s in r.sources]
        assert not par_hits

    def test_check_does_not_observe(self, tracker):
        tracker.observe_document("src", pars("src", SECRET_TEXT))
        state_keys = ("segments", "distinct_hashes", "version")
        before = tracker.paragraphs.stats()
        tracker.check_document("probe", pars("probe", OTHER_TEXT))
        after = tracker.paragraphs.stats()
        # Query counters move; the database state must not.
        assert {k: after[k] for k in state_keys} == {
            k: before[k] for k in state_keys
        }

    def test_all_sources_accumulates(self, tracker):
        tracker.observe_document("src", pars("src", SECRET_TEXT))
        report = tracker.check_document("new", pars("new", SECRET_TEXT))
        assert {s.segment_id for s in report.all_sources()} >= {"src#p0"}


class TestRemoveDocument:
    def test_removes_everything(self, tracker):
        tracker.observe_document("d1", pars("d1", SECRET_TEXT, OTHER_TEXT))
        tracker.remove_document("d1")
        assert len(tracker.paragraphs) == 0
        assert len(tracker.documents) == 0

    def test_other_documents_untouched(self, tracker):
        tracker.observe_document("d1", pars("d1", SECRET_TEXT))
        tracker.observe_document("d2", pars("d2", OTHER_TEXT))
        tracker.remove_document("d1")
        assert len(tracker.paragraphs) == 1
        assert tracker.paragraphs.segment_db.find("d2#p0") is not None

    def test_removed_document_no_longer_reported(self, tracker):
        tracker.observe_document("d1", pars("d1", SECRET_TEXT))
        tracker.remove_document("d1")
        report = tracker.check_document("new", pars("new", SECRET_TEXT))
        assert not report.disclosing


class TestThresholdProperties:
    def test_defaults(self):
        tracker = DisclosureTracker(TINY_CONFIG)
        assert tracker.paragraph_threshold == 0.5
        assert tracker.document_threshold == 0.5

    def test_custom(self):
        tracker = DisclosureTracker(
            TINY_CONFIG, paragraph_threshold=0.2, document_threshold=0.8
        )
        assert tracker.paragraph_threshold == 0.2
        assert tracker.document_threshold == 0.8
