"""Tests for the disclosure engine (Algorithm 1, incremental updates)."""

import pytest

from repro.disclosure import DisclosureEngine
from repro.errors import DisclosureError, UnknownSegmentError
from repro.fingerprint.config import TINY_CONFIG
from repro.util.clock import LogicalClock

from conftest import OTHER_TEXT, SECRET_TEXT, THIRD_TEXT


@pytest.fixture
def engine():
    return DisclosureEngine(TINY_CONFIG, LogicalClock())


class TestObserve:
    def test_observe_creates_record(self, engine):
        record = engine.observe("s1", SECRET_TEXT)
        assert record.segment_id == "s1"
        assert not record.fingerprint.is_empty()
        assert len(engine) == 1

    def test_observe_updates_record(self, engine):
        engine.observe("s1", SECRET_TEXT)
        updated = engine.observe("s1", OTHER_TEXT)
        assert engine.segment_db.get("s1") is updated
        assert len(engine) == 1

    def test_observe_records_hashes(self, engine):
        record = engine.observe("s1", SECRET_TEXT)
        for h in record.fingerprint.hashes:
            assert engine.hash_db.oldest_owner(h) == "s1"

    def test_reobservation_keeps_first_timestamps(self, engine):
        record = engine.observe("s1", SECRET_TEXT)
        some_hash = next(iter(record.fingerprint.hashes))
        first = engine.hash_db.first_seen(some_hash, "s1")
        engine.observe("s1", SECRET_TEXT)
        assert engine.hash_db.first_seen(some_hash, "s1") == first

    def test_invalid_threshold_rejected(self, engine):
        with pytest.raises(DisclosureError):
            engine.observe("s1", SECRET_TEXT, threshold=1.5)

    def test_doc_id_recorded(self, engine):
        record = engine.observe("s1", SECRET_TEXT, doc_id="doc-9")
        assert record.doc_id == "doc-9"

    def test_doc_id_preserved_when_not_repassed(self, engine):
        engine.observe("s1", SECRET_TEXT, doc_id="doc-9")
        updated = engine.observe("s1", SECRET_TEXT + " more")
        assert updated.doc_id == "doc-9"


class TestRemove:
    def test_remove_forgets_segment(self, engine):
        engine.observe("s1", SECRET_TEXT)
        engine.remove("s1")
        assert len(engine) == 0
        with pytest.raises(UnknownSegmentError):
            engine.segment_db.get("s1")

    def test_remove_releases_ownership(self, engine):
        engine.observe("first", SECRET_TEXT)
        engine.observe("second", SECRET_TEXT)
        engine.remove("first")
        record = engine.segment_db.get("second")
        for h in record.fingerprint.hashes:
            assert engine.hash_db.oldest_owner(h) == "second"

    def test_remove_unknown_raises(self, engine):
        with pytest.raises(UnknownSegmentError):
            engine.remove("ghost")


class TestSetThreshold:
    def test_updates_threshold(self, engine):
        engine.observe("s1", SECRET_TEXT, threshold=0.5)
        engine.set_threshold("s1", 0.9)
        assert engine.segment_db.get("s1").threshold == 0.9

    def test_invalid_value(self, engine):
        engine.observe("s1", SECRET_TEXT)
        with pytest.raises(DisclosureError):
            engine.set_threshold("s1", -0.1)

    def test_affects_detection(self, engine):
        engine.observe("s1", SECRET_TEXT, threshold=0.99)
        # A partial copy no longer triggers at threshold 0.99 ...
        partial = SECRET_TEXT[: len(SECRET_TEXT) // 2]
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(partial))
        assert not report.disclosing
        # ... but does after lowering the threshold.
        engine.set_threshold("s1", 0.2)
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(partial))
        assert report.source_ids() == ["s1"]


class TestDisclosureBetween:
    def test_copy_scores_one(self, engine):
        engine.observe("src", SECRET_TEXT)
        engine.observe("dst", SECRET_TEXT)
        assert engine.disclosure_between("src", "dst") == 1.0

    def test_unrelated_scores_zero(self, engine):
        engine.observe("src", SECRET_TEXT)
        engine.observe("dst", OTHER_TEXT)
        assert engine.disclosure_between("src", "dst") == 0.0

    def test_unknown_segment_raises(self, engine):
        engine.observe("src", SECRET_TEXT)
        with pytest.raises(UnknownSegmentError):
            engine.disclosure_between("src", "missing")


class TestAlgorithm1:
    def test_detects_copy(self, engine):
        engine.observe("src", SECRET_TEXT)
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(SECRET_TEXT))
        assert report.source_ids() == ["src"]
        assert report.sources[0].score == 1.0

    def test_no_sources_for_unrelated(self, engine):
        engine.observe("src", SECRET_TEXT)
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(OTHER_TEXT))
        assert not report.disclosing

    def test_detects_embedded_copy(self, engine):
        engine.observe("src", SECRET_TEXT)
        combined = OTHER_TEXT + " " + SECRET_TEXT + " " + THIRD_TEXT
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(combined))
        assert "src" in report.source_ids()

    def test_modified_text_below_threshold_not_reported(self, engine):
        engine.observe("src", SECRET_TEXT, threshold=0.5)
        words = SECRET_TEXT.split()
        # Replace most words: similarity falls below 50%.
        mangled = " ".join(
            w if i % 3 == 0 else "changed" for i, w in enumerate(words)
        )
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(mangled))
        assert not report.disclosing

    def test_self_excluded_for_tracked_target(self, engine):
        engine.observe("solo", SECRET_TEXT)
        report = engine.disclosing_sources("solo")
        assert "solo" not in report.source_ids()

    def test_multiple_sources(self, engine):
        engine.observe("a", SECRET_TEXT)
        engine.observe("b", OTHER_TEXT)
        combined = SECRET_TEXT + " " + OTHER_TEXT
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(combined))
        assert set(report.source_ids()) == {"a", "b"}

    def test_sources_sorted_by_score(self, engine):
        engine.observe("full", SECRET_TEXT)
        engine.observe("partial", THIRD_TEXT)
        target = SECRET_TEXT + " " + THIRD_TEXT[: len(THIRD_TEXT) * 2 // 3]
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(target))
        scores = [s.score for s in report.sources]
        assert scores == sorted(scores, reverse=True)

    def test_requires_exactly_one_target_form(self, engine):
        engine.observe("a", SECRET_TEXT)
        with pytest.raises(DisclosureError):
            engine.disclosing_sources()
        with pytest.raises(DisclosureError):
            engine.disclosing_sources("a", fingerprint=engine.fingerprint("x"))

    def test_exclude_doc_filters_sources(self, engine):
        engine.observe("p1", SECRET_TEXT, doc_id="docA")
        report = engine.disclosing_sources(
            fingerprint=engine.fingerprint(SECRET_TEXT), exclude_doc="docA"
        )
        assert not report.disclosing

    def test_quick_discard_counts(self, engine):
        # A source much longer than the target cannot meet a 0.5
        # threshold; it must be discarded without a full scan.
        engine.observe("long", " ".join([SECRET_TEXT, OTHER_TEXT, THIRD_TEXT]))
        short = SECRET_TEXT[:60]
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(short))
        assert not report.disclosing

    def test_matched_hashes_subset_of_both(self, engine):
        engine.observe("src", SECRET_TEXT)
        target_fp = engine.fingerprint(SECRET_TEXT + " with a small extra tail")
        report = engine.disclosing_sources(fingerprint=target_fp)
        source = report.sources[0]
        src_fp = engine.segment_db.get("src").fingerprint
        assert source.matched_hashes <= src_fp.hashes
        assert source.matched_hashes <= target_fp.hashes


class TestFigure7Overlap:
    def test_superset_not_blamed(self, engine):
        """Paper Figure 7: C copies A; B (a superset of A) is not blamed."""
        engine.observe("A", SECRET_TEXT, threshold=0.5)
        engine.observe("B", SECRET_TEXT + " " + OTHER_TEXT, threshold=0.5)
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(SECRET_TEXT))
        assert report.source_ids() == ["A"]

    def test_without_authoritative_superset_is_blamed(self):
        # B's raw containment in the target is ~0.5 (half of B is the
        # secret), so use a threshold safely below that boundary.
        engine = DisclosureEngine(TINY_CONFIG, authoritative=False)
        engine.observe("A", SECRET_TEXT, threshold=0.3)
        engine.observe("B", SECRET_TEXT + " " + OTHER_TEXT, threshold=0.3)
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(SECRET_TEXT))
        assert set(report.source_ids()) == {"A", "B"}


class TestQueryCache:
    def test_cached_result_reused(self, engine):
        engine.observe("src", SECRET_TEXT)
        engine.observe("target", SECRET_TEXT)
        first = engine.disclosing_sources("target")
        second = engine.disclosing_sources("target")
        assert second is first

    def test_cache_invalidated_by_new_observation(self, engine):
        engine.observe("src", SECRET_TEXT)
        engine.observe("target", SECRET_TEXT + " " + OTHER_TEXT)
        first = engine.disclosing_sources("target")
        engine.observe("other", OTHER_TEXT)  # changes ownership landscape
        second = engine.disclosing_sources("target")
        assert second is not first

    def test_cache_invalidated_by_target_edit(self, engine):
        engine.observe("src", SECRET_TEXT)
        engine.observe("target", SECRET_TEXT)
        first = engine.disclosing_sources("target")
        engine.observe("target", OTHER_TEXT)
        second = engine.disclosing_sources("target")
        assert second is not first
        assert not second.disclosing


class TestStats:
    def test_counters(self, engine):
        stats = engine.stats()
        assert stats["segments"] == 0
        assert stats["distinct_hashes"] == 0
        assert stats["version"] == 0
        assert stats["queries"] == 0
        engine.observe("s", SECRET_TEXT)
        stats = engine.stats()
        assert stats["segments"] == 1
        assert stats["distinct_hashes"] > 0
        assert stats["version"] == 1

    def test_query_counters(self, engine):
        engine.observe("s", SECRET_TEXT)
        engine.disclosing_sources("s")
        stats = engine.stats()
        assert stats["queries"] == 1
        assert stats["query_cache_hits"] == 0
        assert stats["candidates_swept"] >= 1
        # Unchanged segment: second query is a decision-cache hit and
        # does not sweep the index again.
        engine.disclosing_sources("s")
        stats = engine.stats()
        assert stats["queries"] == 2
        assert stats["query_cache_hits"] == 1
        assert stats["candidates_swept"] == 1

    def test_ownership_change_counter(self, engine):
        engine.observe("old", SECRET_TEXT)
        before = engine.stats()["ownership_changes"]
        engine.observe("young", SECRET_TEXT)
        # The younger twin claims nothing: no ownership transitions.
        assert engine.stats()["ownership_changes"] == before
        engine.observe("old", OTHER_TEXT)
        # The edit withdraws "old"'s claims; authority migrates.
        assert engine.stats()["ownership_changes"] > before
