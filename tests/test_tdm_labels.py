"""Tests for the label algebra (Label, SegmentLabel)."""

import pytest

from repro.tdm.labels import EMPTY_LABEL, Label, SegmentLabel
from repro.tdm.tags import Tag


class TestLabel:
    def test_of_constructor(self):
        label = Label.of("ti", "tw")
        assert Tag("ti") in label
        assert Tag("tw") in label
        assert len(label) == 2

    def test_order_independent_equality(self):
        assert Label.of("a", "b") == Label.of("b", "a")

    def test_empty_label(self):
        assert len(EMPTY_LABEL) == 0

    def test_subset_flow_rule(self):
        # Li ⊆ Lp means flow allowed (paper §3.1).
        assert Label.of("ti").is_subset_of(Label.of("ti", "tw"))
        assert not Label.of("ti").is_subset_of(Label.of("tw"))
        assert EMPTY_LABEL.is_subset_of(Label.of("ti"))
        assert EMPTY_LABEL.is_subset_of(EMPTY_LABEL)

    def test_le_operator(self):
        assert Label.of("a") <= Label.of("a", "b")
        assert not (Label.of("a", "b") <= Label.of("a"))

    def test_union(self):
        assert Label.of("a") | Label.of("b") == Label.of("a", "b")

    def test_difference(self):
        assert Label.of("a", "b") - Label.of("b") == Label.of("a")

    def test_with_without_tag(self):
        label = EMPTY_LABEL.with_tag("x")
        assert Tag("x") in label
        assert label.without_tag("x") == EMPTY_LABEL

    def test_immutability(self):
        label = Label.of("a")
        label.with_tag("b")
        assert len(label) == 1

    def test_names_sorted(self):
        assert Label.of("zeta", "alpha").names() == ["alpha", "zeta"]

    def test_str(self):
        assert str(Label.of("b", "a")) == "{a, b}"

    def test_iteration_sorted(self):
        assert [t.name for t in Label.of("c", "a", "b")] == ["a", "b", "c"]


class TestSegmentLabel:
    def test_effective_union_of_explicit_and_implicit(self):
        label = SegmentLabel.of(explicit=["ti"], implicit=["tw"])
        assert label.effective() == Label.of("ti", "tw")

    def test_suppressed_removed_from_effective(self):
        label = SegmentLabel.of(explicit=["ti", "tw"], suppressed=["ti"])
        assert label.effective() == Label.of("tw")

    def test_full_keeps_suppressed(self):
        label = SegmentLabel.of(explicit=["ti"], suppressed=["ti"])
        assert label.full() == Label.of("ti")

    def test_propagating_excludes_implicit(self):
        # §3.2: implicit tags never propagate onwards.
        label = SegmentLabel.of(explicit=["tw"], implicit=["ti"])
        assert label.propagating() == frozenset({Tag("tw")})

    def test_propagating_excludes_suppressed(self):
        label = SegmentLabel.of(explicit=["ti", "tw"], suppressed=["ti"])
        assert label.propagating() == frozenset({Tag("tw")})

    def test_add_implicit_does_not_demote_explicit(self):
        label = SegmentLabel.of(explicit=["ti"]).add_implicit(["ti", "tw"])
        assert Tag("ti") in label.explicit
        assert label.implicit == frozenset({Tag("tw")})

    def test_add_explicit(self):
        label = SegmentLabel().add_explicit(["tn"])
        assert label.explicit == frozenset({Tag("tn")})

    def test_suppress(self):
        label = SegmentLabel.of(explicit=["ti"]).suppress("ti")
        assert Tag("ti") in label.suppressed
        assert label.effective() == EMPTY_LABEL

    def test_flows_to(self):
        label = SegmentLabel.of(explicit=["ti"], implicit=["tw"])
        assert label.flows_to(Label.of("ti", "tw"))
        assert not label.flows_to(Label.of("ti"))

    def test_offending_tags(self):
        label = SegmentLabel.of(explicit=["ti"], implicit=["tw"])
        assert label.offending_tags(Label.of("ti")) == Label.of("tw")
        assert label.offending_tags(Label.of("ti", "tw")) == EMPTY_LABEL

    def test_empty_flows_anywhere(self):
        assert SegmentLabel().flows_to(EMPTY_LABEL)

    def test_str_annotates_kinds(self):
        label = SegmentLabel.of(explicit=["e"], implicit=["i"], suppressed=["s", "e"])
        rendered = str(label)
        assert "i?" in rendered
        assert "~s" in rendered and "~e" in rendered
