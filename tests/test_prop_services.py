"""Property tests for the Docs delta protocol and text robustness."""

import json
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser import Browser
from repro.browser.http import HttpRequest
from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import TINY_CONFIG
from repro.services import DocsService, Network

# Random edit scripts: (op, index, payload)
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(min_value=0, max_value=200),
        st.text(alphabet=string.ascii_lowercase + " ", min_size=0, max_size=10),
    ),
    max_size=25,
)


def apply_reference(text: str, op: str, index: int, payload: str) -> str:
    """The spec: what the backend must compute for each delta."""
    index = max(0, min(index, len(text)))
    if op == "insert":
        return text[:index] + payload + text[index:]
    count = len(payload)  # reuse payload length as delete count
    return text[:index] + text[index + count:]


class TestDeltaProtocolProperties:
    @given(ops)
    @settings(max_examples=50, deadline=None)
    def test_backend_matches_reference(self, script):
        docs = DocsService()
        network = Network()
        network.register(docs)
        doc = docs.backend.create()
        expected = ""
        for op, index, payload in script:
            body = {"doc_id": doc.doc_id, "op": op, "par_id": "p0",
                    "index": index}
            if op == "insert":
                body["chars"] = payload
            else:
                body["count"] = len(payload)
            response = docs.handle_request(
                HttpRequest("POST", docs.url("/sync"), body=json.dumps(body))
            )
            assert response.ok
            expected = apply_reference(expected, op, index, payload)
        stored = doc.find_paragraph("p0")
        assert (stored or "") == expected


class TestUnicodeRobustness:
    @given(st.text(min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_never_crashes(self, text):
        fp = Fingerprinter(TINY_CONFIG).fingerprint(text)
        assert len(fp) >= 0

    @given(st.text(min_size=0, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_editor_roundtrip_arbitrary_text(self, text):
        network = Network()
        docs = DocsService()
        network.register(docs)
        browser = Browser(network)
        editor = docs.open_editor(browser.new_tab())
        par = editor.new_paragraph()
        assert editor.set_paragraph_text(par, text)
        stored = docs.backend.get(editor.doc_id).find_paragraph(
            editor.paragraph_id(par)
        )
        assert stored == text
