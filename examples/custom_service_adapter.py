#!/usr/bin/env python3
"""Protecting a brand-new AJAX service with one adapter.

The paper claims its two browser mechanisms support new services "with
minimal effort" (§5.2). This example builds a toy kanban-board service
from scratch — cards hold text in the DOM and sync via XHR — and then
protects it by registering a single
:class:`~repro.plugin.adapters.EditorAdapter` plus a tiny body parser.

Run with:  python examples/custom_service_adapter.py
"""

import json

from repro import (
    Browser,
    BrowserFlowPlugin,
    EditorAdapter,
    Label,
    Network,
    PolicyStore,
    TextDisclosureModel,
    WikiService,
)
from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import RequestBlocked
from repro.services.base import CloudService

SECRET = (
    "Migration runbook: the customer database failover drill is scheduled "
    "for the first Saturday of next month and the rollback window is "
    "forty-five minutes end to end."
)


class KanbanService(CloudService):
    """A minimal kanban board: cards in the DOM, XHR sync."""

    def __init__(self):
        super().__init__("https://kanban.example.com", "Kanban")

    def render(self, url):
        document = Document()
        board = document.create_element("div", {"id": "board"})
        document.body.append_child(board)
        stored = self.backend.find("board")
        if stored is not None:
            for card_id, text in stored.paragraphs:
                board.append_child(self._card(document, card_id, text))
        return document

    def _card(self, document, card_id, text):
        card = document.create_element(
            "div", {"class": "card", "data-card-id": card_id}
        )
        card.set_text(text)
        return card

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path == "/card":
            payload = json.loads(request.body or "{}")
            doc = self.backend.find("board") or self.backend.create(doc_id="board")
            doc.paragraphs.append((payload["card_id"], payload["text"]))
            return HttpResponse(body="ok")
        return HttpResponse(status=404)

    # Client-side helper: add a card (DOM first, then sync).
    def add_card(self, tab, text):
        card_id = self.backend.new_par_id()
        board = tab.document.get_element_by_id("board")
        board.append_child(self._card(tab.document, card_id, text))
        xhr = tab.window.new_xhr()
        xhr.open("POST", self.url("/card"))
        try:
            xhr.send(json.dumps({"card_id": card_id, "text": text}))
        except RequestBlocked:
            return False
        return True

    def cards(self):
        doc = self.backend.find("board")
        return [text for _cid, text in doc.paragraphs] if doc else []


def main() -> None:
    network = Network()
    wiki = WikiService()
    kanban = KanbanService()
    network.register(wiki)
    network.register(kanban)

    policies = PolicyStore()
    policies.register_service(
        wiki.origin, privilege=Label.of("tw"), confidentiality=Label.of("tw")
    )
    policies.register_service(kanban.origin)  # untrusted

    model = TextDisclosureModel(policies)
    browser = Browser(network)
    plugin = BrowserFlowPlugin(model)
    plugin.attach(browser)

    # The whole integration: one adapter (where editable text lives in
    # the DOM) and one sync parser (which XHR bodies carry user text).
    plugin.register_adapter(
        EditorAdapter(
            name="kanban",
            container_id="board",
            paragraph_class="card",
            id_attribute="data-card-id",
            path_prefix="/",
            doc_id_template="board:{}",
        )
    )

    def kanban_parser(service_id, payload):
        if service_id == kanban.origin and "card_id" in payload:
            return ("board", payload["card_id"], payload.get("text", ""))
        return None

    plugin.register_sync_parser(kanban_parser)

    wiki.save_page("Runbook", SECRET)
    browser.open(wiki.page_url("Runbook"))  # labels the runbook {tw}

    tab = browser.open(kanban.url("/"))
    print("card with fresh text:",
          kanban.add_card(tab, "Sprint goal: polish the onboarding flow."))

    delivered = kanban.add_card(tab, SECRET)
    print(f"card with the runbook delivered: {delivered}")
    print(f"kanban backend cards: {len(kanban.cards())}")
    for warning in plugin.warnings[:1]:
        print(f"warning: card discloses {warning.offending}")
    marked = plugin.ui.marked_elements(tab.document)
    print(f"cards marked red in the UI: {len(marked)}")


if __name__ == "__main__":
    main()
