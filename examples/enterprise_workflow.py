#!/usr/bin/env python3
"""The paper's §2 scenario end to end: Interview Tool, internal Wiki,
and an external Docs service inside one simulated browser with the
BrowserFlow plug-in attached.

Covers default tags (Figure 3), suppression with audit (Figure 4),
custom tags (Figure 5), and implicit tags (Figure 6).

Run with:  python examples/enterprise_workflow.py
"""

from repro import (
    Browser,
    BrowserFlowPlugin,
    DocsService,
    InterviewTool,
    Label,
    Network,
    PolicyStore,
    TextDisclosureModel,
    WikiService,
)

EVALUATION = (
    "The candidate gave an excellent answer on consensus protocols and "
    "designed a replicated log with clear failure handling, recommended "
    "for hire at the senior level by the whole panel."
)
GUIDELINES = (
    "Interview guidelines require two systems questions per loop and "
    "structured written feedback within one business day, and the rubric "
    "scores must stay within the hiring committee."
)


def main() -> None:
    # -- infrastructure -------------------------------------------------
    network = Network()
    wiki = WikiService()
    itool = InterviewTool()
    docs = DocsService()
    for service in (wiki, itool, docs):
        network.register(service)

    # -- enterprise policy (Figure 3's label assignment) -----------------
    policies = PolicyStore()
    policies.register_service(
        itool.origin, privilege=Label.of("ti"), confidentiality=Label.of("ti"),
        display_name="Interview Tool",
    )
    policies.register_service(
        wiki.origin, privilege=Label.of("tw"), confidentiality=Label.of("tw"),
        display_name="Internal Wiki",
    )
    policies.register_service(docs.origin, display_name="Docs")

    model = TextDisclosureModel(policies)
    browser = Browser(network)
    plugin = BrowserFlowPlugin(model)
    plugin.attach(browser)

    # -- content appears in the internal services ------------------------
    itool.add_note("jane-doe", EVALUATION)
    wiki.save_page("Hiring", GUIDELINES)
    browser.open(itool.candidate_url("jane-doe"))  # plug-in labels {ti}
    browser.open(wiki.page_url("Hiring"))          # plug-in labels {tw}

    # -- Figure 3: default tags block cross-service flows ---------------
    print("== Default tag assignment ==")
    ok = wiki.edit(browser.new_tab(), "Notes", EVALUATION)
    print(f"evaluation -> wiki: delivered={ok} (expected False: {{ti}} !<= {{tw}})")

    editor = docs.open_editor(browser.new_tab())
    par = editor.new_paragraph()
    ok = editor.paste(par, GUIDELINES)
    print(f"guidelines -> docs: delivered={ok} (expected False: {{tw}} !<= {{}})")
    print(f"paragraph marked: {plugin.ui.is_marked(par)}")

    # -- Figure 4: suppression declassifies, with an audit trail --------
    print("\n== Tag suppression ==")
    for warning in list(plugin.warnings):
        plugin.suppress(warning.segment_id, warning.offending[0],
                        user="alice", justification="approved by hiring lead")
    ok = wiki.edit(browser.new_tab(), "Notes", EVALUATION)
    print(f"evaluation -> wiki after suppression: delivered={ok}")
    for event in model.audit:
        print(f"  audit: {event.user} suppressed {event.tag} on "
              f"{event.segment_id.split('|')[-1]} ({event.justification!r})")

    # -- Figure 6: implicit tags stop stale propagation ------------------
    print("\n== Implicit tags ==")
    browser.open(wiki.page_url("Notes"))
    label = [
        model.label_of(sid)
        for sid in model.tracker.paragraphs.segment_db.ids()
        if sid.startswith(wiki.origin) and "Notes" in sid
    ]
    if label:
        print(f"wiki copy of the evaluation carries label {label[0]}")

    # -- Figure 5: custom tags ------------------------------------------
    print("\n== Custom tags ==")
    model.allocate_custom_tag("launch-x", owner="bob")
    page_segments = [
        sid for sid in model.tracker.paragraphs.segment_db.ids()
        if "Hiring" in sid
    ]
    for segment_id in page_segments:
        model.add_tag_to_segment(segment_id, "launch-x")
    print(f"wiki privilege label now: {model.policies.get(wiki.origin).privilege}")
    ok = wiki.edit(browser.new_tab(), "Summary", GUIDELINES)
    print(f"protected text -> wiki (already stores it): delivered={ok}")

    print("\n== Plug-in statistics ==")
    for key, value in plugin.stats().items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
