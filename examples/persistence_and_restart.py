#!/usr/bin/env python3
"""State that survives a browser restart, plus the Notes service.

Demonstrates the §4.4 operational recommendations: model state
(fingerprint databases, labels, audit log) is saved encrypted at rest,
the "browser" restarts, and enforcement continues seamlessly — here
against the Evernote-style Notes service, which the plug-in covers via
a one-line editor adapter.

Run with:  python examples/persistence_and_restart.py
"""

import tempfile
from pathlib import Path

from repro import (
    Browser,
    BrowserFlowPlugin,
    Label,
    Network,
    PolicyStore,
    TextDisclosureModel,
    UploadCipher,
    WikiService,
)
from repro.services.notes import NotesService
from repro.tdm.state import load_model, save_model

ROADMAP = (
    "The platform roadmap commits to shipping the realtime collaboration "
    "backend in the first quarter and deprecating the legacy sync service "
    "by the end of the year, pending the partner migration."
)


def build_world(model):
    """A fresh browser/services world attached to the given model."""
    network = Network()
    wiki = WikiService()
    notes = NotesService()
    network.register(wiki)
    network.register(notes)
    browser = Browser(network)
    plugin = BrowserFlowPlugin(model)
    plugin.attach(browser)
    return browser, wiki, notes, plugin


def main() -> None:
    state_path = Path(tempfile.mkdtemp()) / "browserflow-state.enc"
    disk_cipher = UploadCipher("device-keystore-secret")

    # ------------------------------------------------------------------
    # Session 1: the roadmap is observed in the wiki, then we shut down.
    # ------------------------------------------------------------------
    policies = PolicyStore()
    policies.register_service(
        "https://xyz.com", privilege=Label.of("tw"),
        confidentiality=Label.of("tw"), display_name="Internal Wiki",
    )
    policies.register_service("https://notes.example.com", display_name="Notes")
    model = TextDisclosureModel(policies)

    browser, wiki, notes, plugin = build_world(model)
    wiki.save_page("Roadmap", ROADMAP)
    browser.open(wiki.page_url("Roadmap"))  # plug-in labels the text {tw}

    save_model(model, state_path, cipher=disk_cipher)
    print(f"session 1: observed roadmap, saved state to {state_path.name}")
    print(f"state file is ciphertext: {'roadmap' not in state_path.read_text()}")

    # ------------------------------------------------------------------
    # Session 2: new process, state reloaded, enforcement continues.
    # ------------------------------------------------------------------
    restored = load_model(state_path, cipher=disk_cipher)
    browser, wiki, notes, plugin = build_world(restored)

    print("\nsession 2 (after restart):")
    view = notes.open_notebook(browser.new_tab(), "personal")
    note = view.new_note()
    delivered = view.write(note, ROADMAP)
    print(f"paste roadmap into personal notes: delivered={delivered}")
    print(f"notes backend holds: {notes.notes_in('personal') or 'nothing'}")
    for warning in plugin.warnings:
        print(f"warning: note discloses {warning.offending} "
              f"from {[s.split('|')[-1] for s in warning.source_ids]}")

    harmless = "Grocery list: apples, coffee beans, and a new notebook."
    view.write(view.new_note(), harmless)
    print(f"harmless note delivered: {notes.notes_in('personal') == [harmless]}")


if __name__ == "__main__":
    main()
