#!/usr/bin/env python3
"""Quickstart: fingerprints, disclosure, and a two-service policy.

Run with:  python examples/quickstart.py
"""

from repro import (
    DisclosureEngine,
    Fingerprinter,
    Label,
    PolicyStore,
    TextDisclosureModel,
)
from repro.fingerprint import FingerprintConfig

SENSITIVE = (
    "The acquisition of Initech is expected to close in the third quarter "
    "pending regulatory approval, and must not be discussed outside the "
    "deal team until the public announcement."
)
REWRITTEN = (
    "Quarterly town hall topics include the cafeteria refurbishment, new "
    "parking arrangements, and the volunteering programme for the autumn."
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Winnowing fingerprints (paper §4.1)
    # ------------------------------------------------------------------
    config = FingerprintConfig(ngram_size=15, window_size=30)  # paper values
    fingerprinter = Fingerprinter(config)

    original = fingerprinter.fingerprint(SENSITIVE)
    copy = fingerprinter.fingerprint("PREFIX -- " + SENSITIVE + " -- SUFFIX")
    unrelated = fingerprinter.fingerprint(REWRITTEN)

    print("== Fingerprints ==")
    print(f"original hashes:   {len(original)}")
    print(f"copy containment:  {original.containment_in(copy):.2f}")
    print(f"unrelated overlap: {original.containment_in(unrelated):.2f}")

    # ------------------------------------------------------------------
    # 2. The information disclosure problem (paper §4.2)
    # ------------------------------------------------------------------
    engine = DisclosureEngine(config)
    engine.observe("deals-wiki:initech", SENSITIVE, threshold=0.5)

    pasted = SENSITIVE[: len(SENSITIVE) * 3 // 4]  # partial copy
    report = engine.disclosing_sources(fingerprint=engine.fingerprint(pasted))
    print("\n== Disclosure query ==")
    for source in report.sources:
        print(f"discloses {source.segment_id} (D = {source.score:.2f})")
    if not report.disclosing:
        print("no disclosure detected")

    # ------------------------------------------------------------------
    # 3. A data disclosure policy (paper §3)
    # ------------------------------------------------------------------
    policies = PolicyStore()
    policies.register_service(
        "https://wiki.corp.example",
        privilege=Label.of("internal"),
        confidentiality=Label.of("internal"),
        display_name="Internal Wiki",
    )
    policies.register_service(
        "https://docs.google.example", display_name="External Docs"
    )

    model = TextDisclosureModel(policies, config)
    model.observe(
        "https://wiki.corp.example", "deal-doc", [("deal-doc#p0", SENSITIVE)]
    )

    print("\n== Policy check ==")
    decision = model.check_upload(
        "https://docs.google.example", "draft", [("draft#p0", SENSITIVE)]
    )
    print(f"upload sensitive text to external docs: allowed={decision.allowed}")
    for violation in decision.violations:
        print(f"  violation: {violation.describe()}")

    decision = model.check_upload(
        "https://docs.google.example", "draft2", [("draft2#p0", REWRITTEN)]
    )
    print(f"upload unrelated text to external docs: allowed={decision.allowed}")


if __name__ == "__main__":
    main()
