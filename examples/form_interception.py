#!/usr/bin/env python3
"""Form-based services and the encrypted-upload fallback.

A user tries to post internal wiki content to a public forum. In
ENFORCE mode the post is blocked; in ENCRYPT mode it goes through with
the sensitive field replaced by ciphertext, so the forum's backend
never stores plaintext (paper §3, §5.1).

Run with:  python examples/form_interception.py
"""

from repro import (
    Browser,
    BrowserFlowPlugin,
    ForumService,
    Label,
    Network,
    PolicyStore,
    PluginMode,
    TextDisclosureModel,
    UploadCipher,
    WikiService,
)

ANNOUNCEMENT = (
    "Project Nightingale enters private beta next month with three pilot "
    "customers, and pricing will undercut the incumbent by twenty percent "
    "according to the internal launch plan."
)


def build(mode, cipher=None):
    network = Network()
    wiki = WikiService()
    forum = ForumService()
    network.register(wiki)
    network.register(forum)

    policies = PolicyStore()
    policies.register_service(
        wiki.origin, privilege=Label.of("tw"), confidentiality=Label.of("tw")
    )
    policies.register_service(forum.origin)  # untrusted: Lp = {}

    model = TextDisclosureModel(policies)
    browser = Browser(network)
    plugin = BrowserFlowPlugin(model, mode=mode, cipher=cipher)
    plugin.attach(browser)

    wiki.save_page("Launch", ANNOUNCEMENT)
    browser.open(wiki.page_url("Launch"))  # plug-in labels the text {tw}
    return browser, wiki, forum, plugin


def main() -> None:
    print("== ENFORCE mode: the post is blocked ==")
    browser, _wiki, forum, plugin = build(PluginMode.ENFORCE)
    delivered = forum.post(browser.new_tab(), "general", ANNOUNCEMENT)
    print(f"delivered: {delivered}")
    print(f"forum backend: {forum.posts_in('general') or 'empty'}")
    for warning in plugin.warnings[:1]:
        print(f"warning: segment carries {warning.offending}")

    print("\n== ENCRYPT mode: ciphertext reaches the forum ==")
    cipher = UploadCipher("organisation-master-key")
    browser, _wiki, forum, plugin = build(PluginMode.ENCRYPT, cipher)
    delivered = forum.post(browser.new_tab(), "general", ANNOUNCEMENT)
    print(f"delivered: {delivered}")
    stored = forum.posts_in("general")[0]
    print(f"forum stores: {stored[:60]}...")
    print(f"decrypts back to plaintext: {cipher.decrypt(stored) == ANNOUNCEMENT}")

    print("\n== Clean text posts normally in either mode ==")
    ok = forum.post(
        browser.new_tab(), "general",
        "Has anyone tried the new build system release from last week?",
    )
    print(f"delivered: {ok}; posts in thread: {len(forum.posts_in('general'))}")


if __name__ == "__main__":
    main()
