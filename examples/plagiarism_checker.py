#!/usr/bin/env python3
"""Standalone near-duplicate detection with the winnowing engine.

BrowserFlow's imprecise tracking is built on plagiarism-detection
machinery (Schleimer et al. 2003); this example uses the disclosure
engine directly as a similarity checker over a small corpus of
"submissions", including passage-level attribution of the match.

Run with:  python examples/plagiarism_checker.py
"""

import random

from repro import DisclosureEngine, attribute_disclosure
from repro.datasets.synthesis import EditModel, TextSynthesizer

N_SUBMISSIONS = 8


def build_corpus():
    """Original submissions plus one plagiarised and one clean probe."""
    rng = random.Random("plagiarism-demo")
    synth = TextSynthesizer("cpp", rng)
    editor = EditModel(synth, rng)
    submissions = {
        f"student-{i:02d}": synth.paragraph(5, 8) for i in range(N_SUBMISSIONS)
    }
    # The plagiarist lightly rewords student-03's work and appends a bit.
    source = submissions["student-03"]
    plagiarised = editor.substitute_words(source, 0.08) + " " + synth.sentence()
    clean = synth.paragraph(5, 8)
    return submissions, plagiarised, clean


def main() -> None:
    submissions, plagiarised, clean = build_corpus()

    engine = DisclosureEngine()
    for student, text in submissions.items():
        engine.observe(student, text, threshold=0.4)

    print("== Checking a suspicious submission ==")
    suspicious_fp = engine.fingerprint(plagiarised)
    report = engine.disclosing_sources(fingerprint=suspicious_fp)
    for source in report.sources:
        print(f"matches {source.segment_id}: D = {source.score:.2f}")
        source_record = engine.segment_db.get(source.segment_id)
        match = attribute_disclosure(
            source_record.fingerprint, suspicious_fp, source.matched_hashes
        )
        excerpts = match.target_excerpts(plagiarised)
        preview = excerpts[0][:100] if excerpts else ""
        print(f"  copied passage starts: {preview!r}...")
    if not report.disclosing:
        print("no match found")

    print("\n== Checking a clean submission ==")
    report = engine.disclosing_sources(fingerprint=engine.fingerprint(clean))
    print("matches:", report.source_ids() or "none")

    print("\n== Pairwise containment matrix (authoritative) ==")
    students = sorted(submissions)
    print("           " + " ".join(s[-2:] for s in students))
    for a in students:
        row = [
            f"{engine.disclosure_between(a, b):4.2f}" if a != b else "  - "
            for b in students
        ]
        print(f"{a}  " + " ".join(row))


if __name__ == "__main__":
    main()
