#!/usr/bin/env python3
"""Track disclosure across synthetic Wikipedia revisions — a miniature
Figure 9 printed to the terminal.

Run with:  python examples/revision_tracking.py
"""

from repro.datasets import WikipediaCorpus
from repro.eval import figure9_paragraph_disclosure
from repro.eval.charts import series_plot
from repro.eval.reporting import format_series

N_REVISIONS = 50


def main() -> None:
    print(f"generating corpus ({N_REVISIONS} revisions per article)...")
    corpus = WikipediaCorpus.generate(n_revisions=N_REVISIONS, seed=99)

    results = figure9_paragraph_disclosure(
        corpus, revision_step=max(1, N_REVISIONS // 8)
    )

    stable = {t: [(float(i), p) for i, p in s] for t, s in results.items()
              if corpus.by_title(t).volatility == "stable"}
    volatile = {t: [(float(i), p) for i, p in s] for t, s in results.items()
                if corpus.by_title(t).volatility == "volatile"}

    print()
    print(format_series(
        stable,
        title="Stable articles (paper Figure 9a): disclosure persists",
        x_label="revision", y_label="% base paragraphs disclosed",
    ))
    print()
    print(format_series(
        volatile,
        title="Volatile articles (paper Figure 9b): disclosure decays",
        x_label="revision", y_label="% base paragraphs disclosed",
    ))

    print()
    combined = {
        "Chicago (stable)": stable.get("Chicago", []),
        "Dow Jones (volatile)": volatile.get("Dow Jones", []),
    }
    print(series_plot(combined, width=60, height=10,
                      title="One of each regime:", y_label="%"))

    print("\nInterpretation: once text is edited past the similarity")
    print("threshold it is safe to disclose again — imprecise tracking")
    print("forgets lineage when the content no longer resembles it.")


if __name__ == "__main__":
    main()
